#include "src/spice/kernel.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "src/spice/fault.h"
#include "src/util/error.h"

namespace ape::spice {

// ---------------------------------------------------------------------------
// Kernel policy (ambient, thread-local — see the THREAD-SAFETY RULE in
// src/util/diagnostics.h).

namespace {
thread_local const KernelPolicy* g_ambient_policy = nullptr;
}  // namespace

const KernelPolicy& kernel_policy() {
  static const KernelPolicy kDefault;
  return g_ambient_policy != nullptr ? *g_ambient_policy : kDefault;
}

ScopedKernelPolicy::ScopedKernelPolicy(const KernelPolicy& policy)
    : previous_(g_ambient_policy) {
  g_ambient_policy = &policy;
}

ScopedKernelPolicy::~ScopedKernelPolicy() { g_ambient_policy = previous_; }

// ---------------------------------------------------------------------------
// SolveWorkspace

SolveWorkspace::SolveWorkspace(Circuit& ckt)
    : ckt_(&ckt),
      dim_((ckt.finalize(), ckt.dim())),
      n_nodes_(ckt.num_nodes()),
      mna_(dim_),
      base_(dim_) {
  lu_.reserve(dim_);
  xnew_.assign(dim_, 0.0);
  zero_x_.x.assign(dim_, 0.0);
  row_scale_.assign(dim_, 1.0);
  col_scale_.assign(dim_, 1.0);
  col_sums_.assign(dim_, 0.0);
  hresid_.assign(dim_, 0.0);
  hdx_.assign(dim_, 0.0);
  hbest_.assign(dim_, 0.0);
  hwork_.assign(dim_, 0.0);
  hwork2_.assign(dim_, 0.0);
  begin_capture();
  setup_bytes_ = measured_bytes();
  stats_.workspace_bytes = setup_bytes_;
}

SolveWorkspace::~SolveWorkspace() {
  if (KernelStats* sink = ambient_kernel_sink()) sink->accumulate(stats());
}

void SolveWorkspace::begin_capture() {
  pattern_.reset(dim_);
  base_.set_recorder(&pattern_);
  mna_.set_recorder(&pattern_);
  frozen_ = false;
  use_sparse_ = false;
  sparse_bytes_settled_ = false;
}

void SolveWorkspace::note_baseline_kind(BaselineKind kind) {
  if (baseline_kind_ == kind) return;
  // DC and transient baselines stamp different structural slots (a
  // capacitor is open at DC but conducts geq in transient), so a frozen
  // pattern from the other family would silently drop slots. Reopen the
  // capture; the next solve refreezes. In practice each analysis owns
  // its workspace and this fires exactly once, before the first solve.
  if (baseline_kind_ != BaselineKind::None) begin_capture();
  baseline_kind_ = kind;
}

void SolveWorkspace::build_dc_baseline(double gmin, double src_scale) {
  note_baseline_kind(BaselineKind::Dc);
  base_.clear();
  for (const Device* d : ckt_->linear_devices()) d->stamp_dc(base_, zero_x_, src_scale);
  for (size_t i = 0; i < n_nodes_; ++i) {
    base_.add(static_cast<NodeId>(i), static_cast<NodeId>(i), gmin);
  }
  ++stats_.baseline_builds;
}

void SolveWorkspace::build_tran_baseline(const TranContext& tc) {
  note_baseline_kind(BaselineKind::Tran);
  base_.clear();
  for (const Device* d : ckt_->linear_devices()) d->stamp_tran(base_, zero_x_, tc);
  for (size_t i = 0; i < n_nodes_; ++i) {
    base_.add(static_cast<NodeId>(i), static_cast<NodeId>(i), kFloatingNodeGmin);
  }
  ++stats_.baseline_builds;
}

void SolveWorkspace::restore_baseline() {
  std::copy_n(base_.matrix().data(), base_.matrix().size(), mna_.matrix().data());
  std::copy(base_.rhs().begin(), base_.rhs().end(), mna_.rhs().begin());
  ++stats_.baseline_restores;
  stats_.linear_stamps_skipped += static_cast<long>(ckt_->linear_devices().size());
}

void SolveWorkspace::assemble_dc(const Solution& x, double src_scale) {
  restore_baseline();
  for (const Device* d : ckt_->nonlinear_devices()) d->stamp_dc(mna_, x, src_scale);
  stats_.nonlinear_stamps += static_cast<long>(ckt_->nonlinear_devices().size());
}

void SolveWorkspace::assemble_tran(const Solution& x, const TranContext& tc) {
  restore_baseline();
  for (const Device* d : ckt_->nonlinear_devices()) d->stamp_tran(mna_, x, tc);
  stats_.nonlinear_stamps += static_cast<long>(ckt_->nonlinear_devices().size());
}

void SolveWorkspace::freeze_pattern() {
  // The first assembly has been seen: every linear + gmin + nonlinear
  // stamp registered its structural slot (stamp *calls*, not values, so
  // a cutoff device's 0.0 entries are included). Detach the recorder —
  // later assemblies revisit the same slots by construction.
  base_.set_recorder(nullptr);
  mna_.set_recorder(nullptr);
  pattern_.finalize();
  use_sparse_ = kernel_policy().wants_sparse(dim_, pattern_.density());
  if (use_sparse_) {
    flat_idx_.resize(pattern_.nnz());
    svals_.resize(pattern_.nnz());
    const std::vector<int>& rp = pattern_.row_ptr();
    const std::vector<int>& cols = pattern_.cols();
    for (size_t r = 0; r < dim_; ++r) {
      for (int s = rp[r]; s < rp[r + 1]; ++s) {
        flat_idx_[s] = r * dim_ + static_cast<size_t>(cols[s]);
      }
    }
  }
  frozen_ = true;
  // The capture / freeze machinery (pattern CSR arrays, gather buffers)
  // allocated between construction and this first solve; fold it into
  // the setup footprint so the regrowth audit only flags growth in the
  // steady-state Newton loop. The sparse factor storage settles
  // separately after the first symbolic factorization.
  setup_bytes_ = measured_bytes();
  stats_.workspace_bytes = setup_bytes_;
}

void SolveWorkspace::sync_sparse_stats() {
  const SparseLuStats& s = slu_.stats();
  stats_.symbolic_analyses = s.symbolic_analyses;
  stats_.symbolic_reuses = s.symbolic_reuses;
  stats_.numeric_refactors = s.numeric_refactors;
  stats_.sparse_nnz = s.nnz;
  stats_.sparse_fill_in = s.fill_in;
}

const std::vector<double>& SolveWorkspace::solve() {
  if (!frozen_) freeze_pattern();
  health_ = NumericHealth{};
  equilibrated_now_ = false;
  const NumericHealthMode mode = ambient_health_mode();
  if (use_sparse_) {
    const double* a = mna_.matrix().data();
    for (size_t s = 0; s < flat_idx_.size(); ++s) svals_[s] = a[flat_idx_[s]];
    bool factored = false;
    // Force mode (the supervisor's numeric-recovery rung) equilibrates
    // up front; otherwise equilibration is the rescue rung below.
    if (mode == NumericHealthMode::Force) try_equilibrate_sparse();
    try {
      slu_.factorize(pattern_, svals_);
      factored = true;
    } catch (const NumericError&) {
      if (mode != NumericHealthMode::Off && !equilibrated_now_ &&
          try_equilibrate_sparse()) {
        try {
          slu_.factorize(pattern_, svals_);
          factored = true;
          health_.recovered = true;
        } catch (const NumericError&) {
        }
      }
    }
    if (factored) {
      if (equilibrated_now_) {
        // The factors hold RAC: solve (RAC) y = R b, then x = C y.
        hwork_ = mna_.rhs();
        scale_vector(hwork_, row_scale_);
        slu_.solve_into(hwork_, xnew_);
        scale_vector(xnew_, col_scale_);
      } else {
        slu_.solve_into(mna_.rhs(), xnew_);
      }
      ++stats_.solves;
      sync_sparse_stats();
      if (!sparse_bytes_settled_) {
        // The sparse buffers (symbolic program, factor storage) are
        // allocated during this first factorization — fold them into the
        // setup footprint so the regrowth audit only flags growth in the
        // steady-state (refactor/solve) loop.
        sparse_bytes_settled_ = true;
        setup_bytes_ = measured_bytes();
        stats_.workspace_bytes = setup_bytes_;
      }
      if (mode != NumericHealthMode::Off) run_health_checks(true, mode);
      record_health();
      return xnew_;
    }
    // Kernel-switch rung: stale pivot ordering (Newton moved the values)
    // or a system the scaled sparse refactor still could not pivot — the
    // dense solver below re-pivots from scratch and throws its own
    // NumericError if the system really is singular.
    ++stats_.sparse_fallbacks;
    sync_sparse_stats();
    equilibrated_now_ = false;
    health_.equilibrated = false;
    if (mode != NumericHealthMode::Off) health_.recovered = true;
  }
  if (mode == NumericHealthMode::Force && !equilibrated_now_) {
    try_equilibrate_dense();
  }
  try {
    factor_dense();
  } catch (const NumericError&) {
    // Equilibrate-and-refactorize rung for the dense path; rethrows the
    // singularity if scaling cannot save it (the Newton ladders above
    // then bump gmin / step the sources).
    if (mode == NumericHealthMode::Off || equilibrated_now_) throw;
    if (!try_equilibrate_dense()) throw;
    factor_dense();
    health_.recovered = true;
  }
  if (equilibrated_now_) {
    hwork_ = mna_.rhs();
    scale_vector(hwork_, row_scale_);
    lu_.solve_into(hwork_, xnew_);
    scale_vector(xnew_, col_scale_);
  } else {
    lu_.solve_into(mna_.rhs(), xnew_);
  }
  ++stats_.solves;
  if (mode != NumericHealthMode::Off) run_health_checks(false, mode);
  record_health();
  return xnew_;
}

bool SolveWorkspace::try_equilibrate_sparse() {
  FaultInjector* fi = fault_injector();
  if (fi != nullptr && fi->on_equilibrate()) return false;
  if (!compute_equilibration_csr(pattern_.row_ptr().data(),
                                 pattern_.cols().data(), svals_.data(), dim_,
                                 row_scale_, col_scale_)) {
    return false;
  }
  scale_csr(pattern_.row_ptr().data(), pattern_.cols().data(), svals_.data(),
            dim_, row_scale_, col_scale_);
  equilibrated_now_ = true;
  health_.equilibrated = true;
  return true;
}

bool SolveWorkspace::try_equilibrate_dense() {
  FaultInjector* fi = fault_injector();
  if (fi != nullptr && fi->on_equilibrate()) return false;
  if (!compute_equilibration(mna_.matrix().data(), dim_, row_scale_,
                             col_scale_)) {
    return false;
  }
  equilibrated_now_ = true;
  health_.equilibrated = true;
  return true;
}

void SolveWorkspace::factor_dense() {
  if (equilibrated_now_) {
    // Scale the stamped system in place (bit-exact powers of two),
    // factorize the scaled copy inside lu_, and restore the stamps
    // immediately — probes and residuals always see the original.
    scale_dense(mna_.matrix().data(), dim_, row_scale_, col_scale_);
    try {
      lu_.factorize(mna_.matrix());
    } catch (...) {
      unscale_dense(mna_.matrix().data(), dim_, row_scale_, col_scale_);
      equilibrated_now_ = false;
      health_.equilibrated = false;
      throw;
    }
    unscale_dense(mna_.matrix().data(), dim_, row_scale_, col_scale_);
  } else {
    lu_.factorize(mna_.matrix());
  }
  ++stats_.factorizations;
}

void SolveWorkspace::run_health_checks(bool sparse, NumericHealthMode mode) {
  const double growth = sparse ? slu_.pivot_growth() : lu_.pivot_growth();
  const double scale = sparse ? slu_.max_abs_scale() : lu_.max_abs_scale();
  const double min_piv = sparse ? slu_.min_pivot() : lu_.min_pivot();
  health_.pivot_growth = growth;
  // O(1) condition lower-bound proxy from the pivot extremes: a spread
  // of 1e12 between the largest entry and the smallest pivot means cond
  // is at least of that order, growth or no growth.
  const double cond_proxy = min_piv > 0.0 ? scale / min_piv : 0.0;
  const bool suspect = growth > health::kPivotGrowthTrigger ||
                       cond_proxy > health::kCondTrigger;
  if (mode != NumericHealthMode::Force && !suspect) return;
  FaultInjector* fi = fault_injector();
  if (fi != nullptr && fi->on_cond_estimate()) {
    health_.cond_estimate = std::numeric_limits<double>::infinity();
  } else {
    const double anorm1 = norm1_dense(mna_.matrix().data(), dim_, col_sums_);
    const std::function<void(std::vector<double>&)> sol =
        [&](std::vector<double>& v) {
          // A^-1 = C (RAC)^-1 R around the live (possibly scaled) factors.
          if (equilibrated_now_) scale_vector(v, row_scale_);
          hwork_ = v;
          if (sparse) {
            slu_.solve_into(hwork_, v);
          } else {
            lu_.solve_into(hwork_, v);
          }
          if (equilibrated_now_) scale_vector(v, col_scale_);
        };
    const std::function<void(std::vector<double>&)> sol_t =
        [&](std::vector<double>& v) {
          // A^-T = R (RAC)^-T C.
          if (equilibrated_now_) scale_vector(v, col_scale_);
          hwork_ = v;
          if (sparse) {
            slu_.solve_transposed_into(hwork_, v);
          } else {
            lu_.solve_transposed_into(hwork_, v);
          }
          if (equilibrated_now_) scale_vector(v, row_scale_);
        };
    health_.cond_estimate = condest_1norm<double>(dim_, anorm1, sol, sol_t, hwork2_);
  }
  const bool refine = mode == NumericHealthMode::Force ||
                      growth > health::kPivotGrowthTrigger ||
                      !(health_.cond_estimate < health::kCondTrigger);
  if (refine) refine_current(sparse);
}

void SolveWorkspace::refine_current(bool sparse) {
  // The residual matvec runs against the dense mna_ storage — the
  // authoritative unscaled system on both paths (the sparse solve
  // gathers its values *from* it).
  const double anorm_inf = norm_inf_dense(mna_.matrix().data(), dim_);
  const std::function<void(const std::vector<double>&, std::vector<double>&)>
      matvec = [&](const std::vector<double>& v, std::vector<double>& y) {
        const double* a = mna_.matrix().data();
        y.resize(dim_);
        for (size_t i = 0; i < dim_; ++i) {
          double acc = 0.0;
          const double* row = a + i * dim_;
          for (size_t j = 0; j < dim_; ++j) acc += row[j] * v[j];
          y[i] = acc;
        }
      };
  const std::function<void(const std::vector<double>&, std::vector<double>&)>
      correct = [&](const std::vector<double>& r, std::vector<double>& d) {
        hwork_ = r;
        if (equilibrated_now_) scale_vector(hwork_, row_scale_);
        if (sparse) {
          slu_.solve_into(hwork_, d);
        } else {
          lu_.solve_into(hwork_, d);
        }
        if (equilibrated_now_) scale_vector(d, col_scale_);
      };
  FaultInjector* fi = fault_injector();
  RefineOutcome out;
  if (fi != nullptr && fi->on_refinement()) {
    // Injected divergence: keep the factored solution, measure its
    // residual, and escalate exactly like a real divergence below.
    out.residual = relative_residual<double>(mna_.rhs(), xnew_, matvec,
                                             anorm_inf, hresid_);
    out.diverged = true;
  } else {
    out = refine_solution<double>(mna_.rhs(), xnew_, matvec, correct,
                                  anorm_inf, hresid_, hdx_, hbest_);
  }
  ++stats_.refinement_solves;
  stats_.refinement_iterations += out.iterations;
  if (out.diverged && !equilibrated_now_) {
    // Escalation: refinement could not fix the unscaled factorization —
    // equilibrate, refactorize, resolve, refine once more.
    bool redone = false;
    if (sparse) {
      if (try_equilibrate_sparse()) {
        try {
          slu_.factorize(pattern_, svals_);
          hwork_ = mna_.rhs();
          scale_vector(hwork_, row_scale_);
          slu_.solve_into(hwork_, xnew_);
          scale_vector(xnew_, col_scale_);
          redone = true;
        } catch (const NumericError&) {
          equilibrated_now_ = false;
          health_.equilibrated = false;
        }
      }
    } else {
      if (try_equilibrate_dense()) {
        try {
          factor_dense();
          hwork_ = mna_.rhs();
          scale_vector(hwork_, row_scale_);
          lu_.solve_into(hwork_, xnew_);
          scale_vector(xnew_, col_scale_);
          redone = true;
        } catch (const NumericError&) {
          // factor_dense cleared the equilibration flags before rethrow.
        }
      }
    }
    if (redone) {
      health_.recovered = true;
      ++stats_.solves;
      const RefineOutcome again =
          refine_solution<double>(mna_.rhs(), xnew_, matvec, correct,
                                  anorm_inf, hresid_, hdx_, hbest_);
      stats_.refinement_iterations += again.iterations;
      out.residual = again.residual;
      out.iterations += again.iterations;
    }
  }
  health_.residual_norm = out.residual;
  health_.refinement_iterations = out.iterations;
}

void SolveWorkspace::record_health() {
  if (health_.pivot_growth > stats_.pivot_growth_max) {
    stats_.pivot_growth_max = health_.pivot_growth;
  }
  if (health_.cond_estimate > stats_.cond_estimate_max) {
    stats_.cond_estimate_max = health_.cond_estimate;
  }
  if (health_.residual_norm > stats_.residual_norm_max) {
    stats_.residual_norm_max = health_.residual_norm;
  }
  if (health_.equilibrated) ++stats_.equilibrated_solves;
  if (health_.recovered) ++stats_.numeric_recoveries;
}

size_t SolveWorkspace::measured_bytes() const {
  const size_t d = sizeof(double);
  return (mna_.matrix().size() + base_.matrix().size() + lu_.size() * lu_.size()) * d +
         (mna_.rhs().size() + base_.rhs().size() + xnew_.size() + zero_x_.x.size()) * d +
         lu_.size() * sizeof(size_t) + pattern_.memory_bytes() + slu_.memory_bytes() +
         svals_.capacity() * d + flat_idx_.capacity() * sizeof(size_t) +
         (row_scale_.capacity() + col_scale_.capacity() + col_sums_.capacity() +
          hresid_.capacity() + hdx_.capacity() + hbest_.capacity() +
          hwork_.capacity() + hwork2_.capacity()) * d;
}

const KernelStats& SolveWorkspace::stats() {
  const size_t now = measured_bytes();
  if (now != setup_bytes_) {
    ++stats_.workspace_regrowths;
    setup_bytes_ = now;
  }
  stats_.workspace_bytes = now;
  return stats_;
}

// ---------------------------------------------------------------------------
// AcKernel

AcKernel::AcKernel(Circuit& ckt) : ckt_(&ckt), dim_((ckt.finalize(), ckt.dim())), mna_(dim_) {
  lu_.reserve(dim_);
  g_.assign(dim_ * dim_, 0.0);
  c_.assign(dim_ * dim_, 0.0);
  row_scale_.assign(dim_, 1.0);
  col_scale_.assign(dim_, 1.0);
  col_sums_.assign(dim_, 0.0);
  cresid_.assign(dim_, {});
  cdx_.assign(dim_, {});
  cbest_.assign(dim_, {});
  cwork_.assign(dim_, {});
  cwork2_.assign(dim_, {});

  // Every shipped device's small-signal stamp is affine in w:
  //   A(w) = G + jwC with real G, C and a w-independent stimulus.
  // One stamp pass at w = 1 therefore yields G = Re(A), C = Im(A). The
  // same pass records the structural slot pattern for the sparse path.
  pattern_.reset(dim_);
  mna_.set_recorder(&pattern_);
  stamp_virtual(1.0);
  mna_.set_recorder(nullptr);
  pattern_.finalize();
  const std::complex<double>* a = mna_.matrix().data();
  for (size_t i = 0; i < g_.size(); ++i) {
    g_[i] = a[i].real();
    c_[i] = a[i].imag();
  }
  rhs0_ = mna_.rhs();

  // Validate the split with a probe at w = 2. Doubling is exact in binary
  // floating point, so a conforming device matches bit-for-bit; the small
  // relative tolerance only buys headroom for a future device whose stamp
  // is affine up to rounding. Anything worse (w^2 terms, tables, ...)
  // disables the fused path in favor of per-point virtual stamping.
  stamp_virtual(2.0);
  const double scale = std::max(1.0, mna_.matrix().max_abs());
  const double tol = 1e-9 * scale;
  for (size_t i = 0; i < g_.size() && exact_split_; ++i) {
    const std::complex<double> predicted(g_[i], 2.0 * c_[i]);
    if (std::abs(a[i] - predicted) > tol) exact_split_ = false;
  }
  for (size_t i = 0; i < rhs0_.size() && exact_split_; ++i) {
    if (std::abs(mna_.rhs()[i] - rhs0_[i]) > tol) exact_split_ = false;
  }

  // Sparse sweep path: only meaningful with a validated split (the
  // virtual-restamp fallback rebuilds the dense matrix anyway). Gather
  // the per-slot SoA G / C arrays so each frequency point assembles with
  // one contiguous O(nnz) loop.
  use_sparse_ = exact_split_ && kernel_policy().wants_sparse(dim_, pattern_.density());
  if (use_sparse_) {
    const size_t nnz = pattern_.nnz();
    gs_.resize(nnz);
    cs_.resize(nnz);
    avals_.resize(nnz);
    const std::vector<int>& rp = pattern_.row_ptr();
    const std::vector<int>& cols = pattern_.cols();
    for (size_t r = 0; r < dim_; ++r) {
      for (int s = rp[r]; s < rp[r + 1]; ++s) {
        const size_t flat = r * dim_ + static_cast<size_t>(cols[s]);
        gs_[s] = g_[flat];
        cs_[s] = c_[flat];
      }
    }
  }

  setup_bytes_ = measured_bytes();
  stats_.workspace_bytes = setup_bytes_;
}

AcKernel::~AcKernel() {
  if (KernelStats* sink = ambient_kernel_sink()) sink->accumulate(stats());
}

void AcKernel::stamp_virtual(double omega) {
  mna_.clear();
  for (const auto& d : ckt_->devices()) d->stamp_ac(mna_, omega);
  // Tiny conductance to ground so capacitively floating nodes stay solvable.
  for (size_t i = 0; i < ckt_->num_nodes(); ++i) {
    mna_.add(static_cast<NodeId>(i), static_cast<NodeId>(i), kFloatingNodeGmin);
  }
}

void AcKernel::assemble_dense(double omega) {
  std::complex<double>* a = mna_.matrix().data();
  for (size_t i = 0; i < g_.size(); ++i) {
    a[i] = std::complex<double>(g_[i], omega * c_[i]);
  }
}

void AcKernel::assemble(double omega) {
  last_omega_ = omega;
  if (use_sparse_) {
    // SoA slot assembly: O(nnz) instead of the O(n^2) dense fill, and a
    // single flat loop the compiler can vectorize across slots. The
    // dense mna_ matrix is deliberately left stale — the factorization
    // consumes avals_; the stimulus rhs stays available via mna().rhs().
    for (size_t s = 0; s < avals_.size(); ++s) {
      avals_[s] = std::complex<double>(gs_[s], omega * cs_[s]);
    }
    std::copy(rhs0_.begin(), rhs0_.end(), mna_.rhs().begin());
    ++stats_.ac_points_fused;
  } else if (exact_split_) {
    assemble_dense(omega);
    std::copy(rhs0_.begin(), rhs0_.end(), mna_.rhs().begin());
    ++stats_.ac_points_fused;
  } else {
    stamp_virtual(omega);
    ++stats_.ac_points_virtual;
  }
}

void AcKernel::factorize() {
  health_ = NumericHealth{};
  equilibrated_now_ = false;
  refine_active_ = false;
  const NumericHealthMode mode = ambient_health_mode();
  if (use_sparse_) {
    bool factored = false;
    if (mode == NumericHealthMode::Force) try_equilibrate_sparse();
    try {
      slu_.factorize(pattern_, avals_);
      factored = true;
    } catch (const NumericError&) {
      // Equilibrate-and-refactorize rung before abandoning the sparse
      // path for this point.
      if (mode != NumericHealthMode::Off && !equilibrated_now_ &&
          try_equilibrate_sparse()) {
        try {
          slu_.factorize(pattern_, avals_);
          factored = true;
          health_.recovered = true;
        } catch (const NumericError&) {
        }
      }
    }
    if (factored) {
      sparse_live_ = true;
      if (equilibrated_now_) {
        // The factors hold RAC; restore the original slot values so
        // residual matvecs and norms see A itself.
        for (size_t s = 0; s < avals_.size(); ++s) {
          avals_[s] = std::complex<double>(gs_[s], last_omega_ * cs_[s]);
        }
      }
      const SparseLuStats& s = slu_.stats();
      stats_.symbolic_analyses = s.symbolic_analyses;
      stats_.symbolic_reuses = s.symbolic_reuses;
      stats_.numeric_refactors = s.numeric_refactors;
      stats_.sparse_nnz = s.nnz;
      stats_.sparse_fill_in = s.fill_in;
      if (!sparse_bytes_settled_) {
        // First symbolic factorization allocated the program + factor
        // storage; fold it into the setup footprint so the regrowth
        // audit only flags growth in the steady-state sweep loop.
        sparse_bytes_settled_ = true;
        setup_bytes_ = measured_bytes();
        stats_.workspace_bytes = setup_bytes_;
      }
      if (mode != NumericHealthMode::Off) post_factor_health(mode);
      return;
    }
    // Kernel-switch rung (dense rescue): rebuild the dense system for
    // this point and re-pivot from scratch (throws if genuinely singular).
    ++stats_.sparse_fallbacks;
    sparse_live_ = false;
    assemble_dense(last_omega_);
    equilibrated_now_ = false;
    health_.equilibrated = false;
    if (mode != NumericHealthMode::Off) health_.recovered = true;
  }
  if (mode == NumericHealthMode::Force && !equilibrated_now_) {
    try_equilibrate_dense();
  }
  try {
    factor_dense();
  } catch (const NumericError&) {
    if (mode == NumericHealthMode::Off || equilibrated_now_) throw;
    if (!try_equilibrate_dense()) throw;
    factor_dense();
    health_.recovered = true;
  }
  if (mode != NumericHealthMode::Off) post_factor_health(mode);
}

bool AcKernel::try_equilibrate_sparse() {
  FaultInjector* fi = fault_injector();
  if (fi != nullptr && fi->on_equilibrate()) return false;
  if (!compute_equilibration_csr(pattern_.row_ptr().data(),
                                 pattern_.cols().data(), avals_.data(), dim_,
                                 row_scale_, col_scale_)) {
    return false;
  }
  scale_csr(pattern_.row_ptr().data(), pattern_.cols().data(), avals_.data(),
            dim_, row_scale_, col_scale_);
  equilibrated_now_ = true;
  health_.equilibrated = true;
  return true;
}

bool AcKernel::try_equilibrate_dense() {
  FaultInjector* fi = fault_injector();
  if (fi != nullptr && fi->on_equilibrate()) return false;
  if (!compute_equilibration(mna_.matrix().data(), dim_, row_scale_,
                             col_scale_)) {
    return false;
  }
  equilibrated_now_ = true;
  health_.equilibrated = true;
  return true;
}

void AcKernel::factor_dense() {
  if (equilibrated_now_) {
    scale_dense(mna_.matrix().data(), dim_, row_scale_, col_scale_);
    try {
      lu_.factorize(mna_.matrix());
    } catch (...) {
      unscale_dense(mna_.matrix().data(), dim_, row_scale_, col_scale_);
      equilibrated_now_ = false;
      health_.equilibrated = false;
      throw;
    }
    unscale_dense(mna_.matrix().data(), dim_, row_scale_, col_scale_);
  } else {
    lu_.factorize(mna_.matrix());
  }
  ++stats_.factorizations;
}

void AcKernel::post_factor_health(NumericHealthMode mode) {
  const double growth = sparse_live_ ? slu_.pivot_growth() : lu_.pivot_growth();
  const double scale = sparse_live_ ? slu_.max_abs_scale() : lu_.max_abs_scale();
  const double min_piv = sparse_live_ ? slu_.min_pivot() : lu_.min_pivot();
  health_.pivot_growth = growth;
  const double cond_proxy = min_piv > 0.0 ? scale / min_piv : 0.0;
  const bool suspect = growth > health::kPivotGrowthTrigger ||
                       cond_proxy > health::kCondTrigger;
  if (mode == NumericHealthMode::Force || suspect) {
    FaultInjector* fi = fault_injector();
    if (fi != nullptr && fi->on_cond_estimate()) {
      health_.cond_estimate = std::numeric_limits<double>::infinity();
    } else {
      const double anorm1 =
          sparse_live_
              ? norm1_csr(pattern_.row_ptr().data(), pattern_.cols().data(),
                          avals_.data(), dim_, col_sums_)
              : norm1_dense(mna_.matrix().data(), dim_, col_sums_);
      using CVec = std::vector<std::complex<double>>;
      const std::function<void(CVec&)> sol = [&](CVec& v) {
        if (equilibrated_now_) scale_vector(v, row_scale_);
        cwork_ = v;
        if (sparse_live_) {
          slu_.solve_into(cwork_, v);
        } else {
          lu_.solve_into(cwork_, v);
        }
        if (equilibrated_now_) scale_vector(v, col_scale_);
      };
      const std::function<void(CVec&)> sol_t = [&](CVec& v) {
        if (equilibrated_now_) scale_vector(v, col_scale_);
        cwork_ = v;
        if (sparse_live_) {
          slu_.solve_transposed_into(cwork_, v);
        } else {
          lu_.solve_transposed_into(cwork_, v);
        }
        if (equilibrated_now_) scale_vector(v, row_scale_);
      };
      health_.cond_estimate =
          condest_1norm<std::complex<double>>(dim_, anorm1, sol, sol_t, cwork2_);
    }
    refine_active_ = mode == NumericHealthMode::Force ||
                     growth > health::kPivotGrowthTrigger ||
                     !(health_.cond_estimate < health::kCondTrigger);
    if (refine_active_) {
      anorm_inf_ =
          sparse_live_
              ? norm_inf_csr(pattern_.row_ptr().data(), avals_.data(), dim_)
              : norm_inf_dense(mna_.matrix().data(), dim_);
    }
  }
  if (health_.pivot_growth > stats_.pivot_growth_max) {
    stats_.pivot_growth_max = health_.pivot_growth;
  }
  if (health_.cond_estimate > stats_.cond_estimate_max) {
    stats_.cond_estimate_max = health_.cond_estimate;
  }
  if (health_.equilibrated) ++stats_.equilibrated_solves;
  if (health_.recovered) ++stats_.numeric_recoveries;
}

void AcKernel::matvec_current(const std::vector<std::complex<double>>& v,
                              std::vector<std::complex<double>>& y) const {
  y.resize(dim_);
  if (sparse_live_) {
    const std::vector<int>& rp = pattern_.row_ptr();
    const std::vector<int>& cols = pattern_.cols();
    for (size_t i = 0; i < dim_; ++i) {
      std::complex<double> acc;
      for (int s = rp[i]; s < rp[i + 1]; ++s) acc += avals_[s] * v[cols[s]];
      y[i] = acc;
    }
  } else {
    const std::complex<double>* a = mna_.matrix().data();
    for (size_t i = 0; i < dim_; ++i) {
      std::complex<double> acc;
      const std::complex<double>* row = a + i * dim_;
      for (size_t j = 0; j < dim_; ++j) acc += row[j] * v[j];
      y[i] = acc;
    }
  }
}

void AcKernel::refine_in_place(const std::vector<std::complex<double>>& rhs,
                               std::vector<std::complex<double>>& x) {
  using CVec = std::vector<std::complex<double>>;
  const std::function<void(const CVec&, CVec&)> matvec =
      [this](const CVec& v, CVec& y) { matvec_current(v, y); };
  const std::function<void(const CVec&, CVec&)> correct = [&](const CVec& r,
                                                              CVec& d) {
    cwork_ = r;
    if (equilibrated_now_) scale_vector(cwork_, row_scale_);
    if (sparse_live_) {
      slu_.solve_into(cwork_, d);
    } else {
      lu_.solve_into(cwork_, d);
    }
    if (equilibrated_now_) scale_vector(d, col_scale_);
  };
  FaultInjector* fi = fault_injector();
  RefineOutcome out;
  if (fi != nullptr && fi->on_refinement()) {
    // Injected divergence: keep the factored solution (its residual is
    // still measured and surfaced); the AC sweep has no further rung —
    // the dense rescue already ran at factorization time.
    out.residual = relative_residual<std::complex<double>>(rhs, x, matvec,
                                                           anorm_inf_, cresid_);
    out.diverged = true;
  } else {
    out = refine_solution<std::complex<double>>(rhs, x, matvec, correct,
                                                anorm_inf_, cresid_, cdx_,
                                                cbest_);
  }
  ++stats_.refinement_solves;
  stats_.refinement_iterations += out.iterations;
  health_.refinement_iterations += out.iterations;
  if (out.residual > health_.residual_norm) health_.residual_norm = out.residual;
  if (out.residual > stats_.residual_norm_max) {
    stats_.residual_norm_max = out.residual;
  }
}

void AcKernel::solve_current(const std::vector<std::complex<double>>& rhs,
                             std::vector<std::complex<double>>& out) {
  if (equilibrated_now_) {
    cwork_ = rhs;
    scale_vector(cwork_, row_scale_);
    if (sparse_live_) {
      slu_.solve_into(cwork_, out);
    } else {
      lu_.solve_into(cwork_, out);
    }
    scale_vector(out, col_scale_);
  } else if (sparse_live_) {
    slu_.solve_into(rhs, out);
  } else {
    lu_.solve_into(rhs, out);
  }
  ++stats_.solves;
  if (refine_active_) refine_in_place(rhs, out);
}

void AcKernel::solve_into(std::vector<std::complex<double>>& out) {
  factorize();
  solve_current(mna_.rhs(), out);
}

void AcKernel::solve_rhs(const std::vector<std::complex<double>>& rhs,
                         std::vector<std::complex<double>>& out) {
  solve_current(rhs, out);
}

size_t AcKernel::measured_bytes() const {
  const size_t z = sizeof(std::complex<double>);
  return (g_.size() + c_.size() + gs_.capacity() + cs_.capacity()) * sizeof(double) +
         (rhs0_.size() + mna_.rhs().size() + avals_.capacity()) * z +
         (mna_.matrix().size() + lu_.size() * lu_.size()) * z + lu_.size() * sizeof(size_t) +
         pattern_.memory_bytes() + slu_.memory_bytes() +
         (row_scale_.capacity() + col_scale_.capacity() + col_sums_.capacity()) * sizeof(double) +
         (cresid_.capacity() + cdx_.capacity() + cbest_.capacity() +
          cwork_.capacity() + cwork2_.capacity()) * z;
}

const KernelStats& AcKernel::stats() {
  const size_t now = measured_bytes();
  if (now != setup_bytes_) {
    ++stats_.workspace_regrowths;
    setup_bytes_ = now;
  }
  stats_.workspace_bytes = now;
  return stats_;
}

}  // namespace ape::spice
