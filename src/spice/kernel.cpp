#include "src/spice/kernel.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace ape::spice {

// ---------------------------------------------------------------------------
// Kernel policy (ambient, thread-local — see the THREAD-SAFETY RULE in
// src/util/diagnostics.h).

namespace {
thread_local const KernelPolicy* g_ambient_policy = nullptr;
}  // namespace

const KernelPolicy& kernel_policy() {
  static const KernelPolicy kDefault;
  return g_ambient_policy != nullptr ? *g_ambient_policy : kDefault;
}

ScopedKernelPolicy::ScopedKernelPolicy(const KernelPolicy& policy)
    : previous_(g_ambient_policy) {
  g_ambient_policy = &policy;
}

ScopedKernelPolicy::~ScopedKernelPolicy() { g_ambient_policy = previous_; }

// ---------------------------------------------------------------------------
// SolveWorkspace

SolveWorkspace::SolveWorkspace(Circuit& ckt)
    : ckt_(&ckt),
      dim_((ckt.finalize(), ckt.dim())),
      n_nodes_(ckt.num_nodes()),
      mna_(dim_),
      base_(dim_) {
  lu_.reserve(dim_);
  xnew_.assign(dim_, 0.0);
  zero_x_.x.assign(dim_, 0.0);
  begin_capture();
  setup_bytes_ = measured_bytes();
  stats_.workspace_bytes = setup_bytes_;
}

SolveWorkspace::~SolveWorkspace() {
  if (KernelStats* sink = ambient_kernel_sink()) sink->accumulate(stats());
}

void SolveWorkspace::begin_capture() {
  pattern_.reset(dim_);
  base_.set_recorder(&pattern_);
  mna_.set_recorder(&pattern_);
  frozen_ = false;
  use_sparse_ = false;
  sparse_bytes_settled_ = false;
}

void SolveWorkspace::note_baseline_kind(BaselineKind kind) {
  if (baseline_kind_ == kind) return;
  // DC and transient baselines stamp different structural slots (a
  // capacitor is open at DC but conducts geq in transient), so a frozen
  // pattern from the other family would silently drop slots. Reopen the
  // capture; the next solve refreezes. In practice each analysis owns
  // its workspace and this fires exactly once, before the first solve.
  if (baseline_kind_ != BaselineKind::None) begin_capture();
  baseline_kind_ = kind;
}

void SolveWorkspace::build_dc_baseline(double gmin, double src_scale) {
  note_baseline_kind(BaselineKind::Dc);
  base_.clear();
  for (const Device* d : ckt_->linear_devices()) d->stamp_dc(base_, zero_x_, src_scale);
  for (size_t i = 0; i < n_nodes_; ++i) {
    base_.add(static_cast<NodeId>(i), static_cast<NodeId>(i), gmin);
  }
  ++stats_.baseline_builds;
}

void SolveWorkspace::build_tran_baseline(const TranContext& tc) {
  note_baseline_kind(BaselineKind::Tran);
  base_.clear();
  for (const Device* d : ckt_->linear_devices()) d->stamp_tran(base_, zero_x_, tc);
  for (size_t i = 0; i < n_nodes_; ++i) {
    base_.add(static_cast<NodeId>(i), static_cast<NodeId>(i), kFloatingNodeGmin);
  }
  ++stats_.baseline_builds;
}

void SolveWorkspace::restore_baseline() {
  std::copy_n(base_.matrix().data(), base_.matrix().size(), mna_.matrix().data());
  std::copy(base_.rhs().begin(), base_.rhs().end(), mna_.rhs().begin());
  ++stats_.baseline_restores;
  stats_.linear_stamps_skipped += static_cast<long>(ckt_->linear_devices().size());
}

void SolveWorkspace::assemble_dc(const Solution& x, double src_scale) {
  restore_baseline();
  for (const Device* d : ckt_->nonlinear_devices()) d->stamp_dc(mna_, x, src_scale);
  stats_.nonlinear_stamps += static_cast<long>(ckt_->nonlinear_devices().size());
}

void SolveWorkspace::assemble_tran(const Solution& x, const TranContext& tc) {
  restore_baseline();
  for (const Device* d : ckt_->nonlinear_devices()) d->stamp_tran(mna_, x, tc);
  stats_.nonlinear_stamps += static_cast<long>(ckt_->nonlinear_devices().size());
}

void SolveWorkspace::freeze_pattern() {
  // The first assembly has been seen: every linear + gmin + nonlinear
  // stamp registered its structural slot (stamp *calls*, not values, so
  // a cutoff device's 0.0 entries are included). Detach the recorder —
  // later assemblies revisit the same slots by construction.
  base_.set_recorder(nullptr);
  mna_.set_recorder(nullptr);
  pattern_.finalize();
  use_sparse_ = kernel_policy().wants_sparse(dim_, pattern_.density());
  if (use_sparse_) {
    flat_idx_.resize(pattern_.nnz());
    svals_.resize(pattern_.nnz());
    const std::vector<int>& rp = pattern_.row_ptr();
    const std::vector<int>& cols = pattern_.cols();
    for (size_t r = 0; r < dim_; ++r) {
      for (int s = rp[r]; s < rp[r + 1]; ++s) {
        flat_idx_[s] = r * dim_ + static_cast<size_t>(cols[s]);
      }
    }
  }
  frozen_ = true;
  // The capture / freeze machinery (pattern CSR arrays, gather buffers)
  // allocated between construction and this first solve; fold it into
  // the setup footprint so the regrowth audit only flags growth in the
  // steady-state Newton loop. The sparse factor storage settles
  // separately after the first symbolic factorization.
  setup_bytes_ = measured_bytes();
  stats_.workspace_bytes = setup_bytes_;
}

void SolveWorkspace::sync_sparse_stats() {
  const SparseLuStats& s = slu_.stats();
  stats_.symbolic_analyses = s.symbolic_analyses;
  stats_.symbolic_reuses = s.symbolic_reuses;
  stats_.numeric_refactors = s.numeric_refactors;
  stats_.sparse_nnz = s.nnz;
  stats_.sparse_fill_in = s.fill_in;
}

const std::vector<double>& SolveWorkspace::solve() {
  if (!frozen_) freeze_pattern();
  if (use_sparse_) {
    const double* a = mna_.matrix().data();
    for (size_t s = 0; s < flat_idx_.size(); ++s) svals_[s] = a[flat_idx_[s]];
    try {
      slu_.factorize(pattern_, svals_);
      slu_.solve_into(mna_.rhs(), xnew_);
      ++stats_.solves;
      sync_sparse_stats();
      if (!sparse_bytes_settled_) {
        // The sparse buffers (symbolic program, factor storage) are
        // allocated during this first factorization — fold them into the
        // setup footprint so the regrowth audit only flags growth in the
        // steady-state (refactor/solve) loop.
        sparse_bytes_settled_ = true;
        setup_bytes_ = measured_bytes();
        stats_.workspace_bytes = setup_bytes_;
      }
      return xnew_;
    } catch (const NumericError&) {
      // Stale pivot ordering (Newton moved the values) or a genuinely
      // singular system: the dense solver below re-pivots from scratch
      // and throws its own NumericError if the system really is singular.
      ++stats_.sparse_fallbacks;
      sync_sparse_stats();
    }
  }
  lu_.factorize(mna_.matrix());
  ++stats_.factorizations;
  lu_.solve_into(mna_.rhs(), xnew_);
  ++stats_.solves;
  return xnew_;
}

size_t SolveWorkspace::measured_bytes() const {
  const size_t d = sizeof(double);
  return (mna_.matrix().size() + base_.matrix().size() + lu_.size() * lu_.size()) * d +
         (mna_.rhs().size() + base_.rhs().size() + xnew_.size() + zero_x_.x.size()) * d +
         lu_.size() * sizeof(size_t) + pattern_.memory_bytes() + slu_.memory_bytes() +
         svals_.capacity() * d + flat_idx_.capacity() * sizeof(size_t);
}

const KernelStats& SolveWorkspace::stats() {
  const size_t now = measured_bytes();
  if (now != setup_bytes_) {
    ++stats_.workspace_regrowths;
    setup_bytes_ = now;
  }
  stats_.workspace_bytes = now;
  return stats_;
}

// ---------------------------------------------------------------------------
// AcKernel

AcKernel::AcKernel(Circuit& ckt) : ckt_(&ckt), dim_((ckt.finalize(), ckt.dim())), mna_(dim_) {
  lu_.reserve(dim_);
  g_.assign(dim_ * dim_, 0.0);
  c_.assign(dim_ * dim_, 0.0);

  // Every shipped device's small-signal stamp is affine in w:
  //   A(w) = G + jwC with real G, C and a w-independent stimulus.
  // One stamp pass at w = 1 therefore yields G = Re(A), C = Im(A). The
  // same pass records the structural slot pattern for the sparse path.
  pattern_.reset(dim_);
  mna_.set_recorder(&pattern_);
  stamp_virtual(1.0);
  mna_.set_recorder(nullptr);
  pattern_.finalize();
  const std::complex<double>* a = mna_.matrix().data();
  for (size_t i = 0; i < g_.size(); ++i) {
    g_[i] = a[i].real();
    c_[i] = a[i].imag();
  }
  rhs0_ = mna_.rhs();

  // Validate the split with a probe at w = 2. Doubling is exact in binary
  // floating point, so a conforming device matches bit-for-bit; the small
  // relative tolerance only buys headroom for a future device whose stamp
  // is affine up to rounding. Anything worse (w^2 terms, tables, ...)
  // disables the fused path in favor of per-point virtual stamping.
  stamp_virtual(2.0);
  const double scale = std::max(1.0, mna_.matrix().max_abs());
  const double tol = 1e-9 * scale;
  for (size_t i = 0; i < g_.size() && exact_split_; ++i) {
    const std::complex<double> predicted(g_[i], 2.0 * c_[i]);
    if (std::abs(a[i] - predicted) > tol) exact_split_ = false;
  }
  for (size_t i = 0; i < rhs0_.size() && exact_split_; ++i) {
    if (std::abs(mna_.rhs()[i] - rhs0_[i]) > tol) exact_split_ = false;
  }

  // Sparse sweep path: only meaningful with a validated split (the
  // virtual-restamp fallback rebuilds the dense matrix anyway). Gather
  // the per-slot SoA G / C arrays so each frequency point assembles with
  // one contiguous O(nnz) loop.
  use_sparse_ = exact_split_ && kernel_policy().wants_sparse(dim_, pattern_.density());
  if (use_sparse_) {
    const size_t nnz = pattern_.nnz();
    gs_.resize(nnz);
    cs_.resize(nnz);
    avals_.resize(nnz);
    const std::vector<int>& rp = pattern_.row_ptr();
    const std::vector<int>& cols = pattern_.cols();
    for (size_t r = 0; r < dim_; ++r) {
      for (int s = rp[r]; s < rp[r + 1]; ++s) {
        const size_t flat = r * dim_ + static_cast<size_t>(cols[s]);
        gs_[s] = g_[flat];
        cs_[s] = c_[flat];
      }
    }
  }

  setup_bytes_ = measured_bytes();
  stats_.workspace_bytes = setup_bytes_;
}

AcKernel::~AcKernel() {
  if (KernelStats* sink = ambient_kernel_sink()) sink->accumulate(stats());
}

void AcKernel::stamp_virtual(double omega) {
  mna_.clear();
  for (const auto& d : ckt_->devices()) d->stamp_ac(mna_, omega);
  // Tiny conductance to ground so capacitively floating nodes stay solvable.
  for (size_t i = 0; i < ckt_->num_nodes(); ++i) {
    mna_.add(static_cast<NodeId>(i), static_cast<NodeId>(i), kFloatingNodeGmin);
  }
}

void AcKernel::assemble_dense(double omega) {
  std::complex<double>* a = mna_.matrix().data();
  for (size_t i = 0; i < g_.size(); ++i) {
    a[i] = std::complex<double>(g_[i], omega * c_[i]);
  }
}

void AcKernel::assemble(double omega) {
  last_omega_ = omega;
  if (use_sparse_) {
    // SoA slot assembly: O(nnz) instead of the O(n^2) dense fill, and a
    // single flat loop the compiler can vectorize across slots. The
    // dense mna_ matrix is deliberately left stale — the factorization
    // consumes avals_; the stimulus rhs stays available via mna().rhs().
    for (size_t s = 0; s < avals_.size(); ++s) {
      avals_[s] = std::complex<double>(gs_[s], omega * cs_[s]);
    }
    std::copy(rhs0_.begin(), rhs0_.end(), mna_.rhs().begin());
    ++stats_.ac_points_fused;
  } else if (exact_split_) {
    assemble_dense(omega);
    std::copy(rhs0_.begin(), rhs0_.end(), mna_.rhs().begin());
    ++stats_.ac_points_fused;
  } else {
    stamp_virtual(omega);
    ++stats_.ac_points_virtual;
  }
}

void AcKernel::factorize() {
  if (use_sparse_) {
    try {
      slu_.factorize(pattern_, avals_);
      sparse_live_ = true;
      const SparseLuStats& s = slu_.stats();
      stats_.symbolic_analyses = s.symbolic_analyses;
      stats_.symbolic_reuses = s.symbolic_reuses;
      stats_.numeric_refactors = s.numeric_refactors;
      stats_.sparse_nnz = s.nnz;
      stats_.sparse_fill_in = s.fill_in;
      if (!sparse_bytes_settled_) {
        // First symbolic factorization allocated the program + factor
        // storage; fold it into the setup footprint so the regrowth
        // audit only flags growth in the steady-state sweep loop.
        sparse_bytes_settled_ = true;
        setup_bytes_ = measured_bytes();
        stats_.workspace_bytes = setup_bytes_;
      }
      return;
    } catch (const NumericError&) {
      // Dense rescue: rebuild the dense system for this point and
      // re-pivot from scratch (throws if genuinely singular).
      ++stats_.sparse_fallbacks;
      sparse_live_ = false;
      assemble_dense(last_omega_);
    }
  }
  lu_.factorize(mna_.matrix());
  ++stats_.factorizations;
}

void AcKernel::solve_into(std::vector<std::complex<double>>& out) {
  factorize();
  if (sparse_live_) {
    slu_.solve_into(mna_.rhs(), out);
  } else {
    lu_.solve_into(mna_.rhs(), out);
  }
  ++stats_.solves;
}

void AcKernel::solve_rhs(const std::vector<std::complex<double>>& rhs,
                         std::vector<std::complex<double>>& out) {
  if (sparse_live_) {
    slu_.solve_into(rhs, out);
  } else {
    lu_.solve_into(rhs, out);
  }
  ++stats_.solves;
}

size_t AcKernel::measured_bytes() const {
  const size_t z = sizeof(std::complex<double>);
  return (g_.size() + c_.size() + gs_.capacity() + cs_.capacity()) * sizeof(double) +
         (rhs0_.size() + mna_.rhs().size() + avals_.capacity()) * z +
         (mna_.matrix().size() + lu_.size() * lu_.size()) * z + lu_.size() * sizeof(size_t) +
         pattern_.memory_bytes() + slu_.memory_bytes();
}

const KernelStats& AcKernel::stats() {
  const size_t now = measured_bytes();
  if (now != setup_bytes_) {
    ++stats_.workspace_regrowths;
    setup_bytes_ = now;
  }
  stats_.workspace_bytes = now;
  return stats_;
}

}  // namespace ape::spice
