#include "src/spice/kernel.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace ape::spice {

// ---------------------------------------------------------------------------
// SolveWorkspace

SolveWorkspace::SolveWorkspace(Circuit& ckt)
    : ckt_(&ckt),
      dim_((ckt.finalize(), ckt.dim())),
      n_nodes_(ckt.num_nodes()),
      mna_(dim_),
      base_(dim_) {
  lu_.reserve(dim_);
  xnew_.assign(dim_, 0.0);
  zero_x_.x.assign(dim_, 0.0);
  setup_bytes_ = measured_bytes();
  stats_.workspace_bytes = setup_bytes_;
}

void SolveWorkspace::build_dc_baseline(double gmin, double src_scale) {
  base_.clear();
  for (const Device* d : ckt_->linear_devices()) d->stamp_dc(base_, zero_x_, src_scale);
  for (size_t i = 0; i < n_nodes_; ++i) {
    base_.add(static_cast<NodeId>(i), static_cast<NodeId>(i), gmin);
  }
  ++stats_.baseline_builds;
}

void SolveWorkspace::build_tran_baseline(const TranContext& tc) {
  base_.clear();
  for (const Device* d : ckt_->linear_devices()) d->stamp_tran(base_, zero_x_, tc);
  for (size_t i = 0; i < n_nodes_; ++i) {
    base_.add(static_cast<NodeId>(i), static_cast<NodeId>(i), kFloatingNodeGmin);
  }
  ++stats_.baseline_builds;
}

void SolveWorkspace::restore_baseline() {
  std::copy_n(base_.matrix().data(), base_.matrix().size(), mna_.matrix().data());
  std::copy(base_.rhs().begin(), base_.rhs().end(), mna_.rhs().begin());
  ++stats_.baseline_restores;
  stats_.linear_stamps_skipped += static_cast<long>(ckt_->linear_devices().size());
}

void SolveWorkspace::assemble_dc(const Solution& x, double src_scale) {
  restore_baseline();
  for (const Device* d : ckt_->nonlinear_devices()) d->stamp_dc(mna_, x, src_scale);
  stats_.nonlinear_stamps += static_cast<long>(ckt_->nonlinear_devices().size());
}

void SolveWorkspace::assemble_tran(const Solution& x, const TranContext& tc) {
  restore_baseline();
  for (const Device* d : ckt_->nonlinear_devices()) d->stamp_tran(mna_, x, tc);
  stats_.nonlinear_stamps += static_cast<long>(ckt_->nonlinear_devices().size());
}

const std::vector<double>& SolveWorkspace::solve() {
  lu_.factorize(mna_.matrix());
  ++stats_.factorizations;
  lu_.solve_into(mna_.rhs(), xnew_);
  ++stats_.solves;
  return xnew_;
}

size_t SolveWorkspace::measured_bytes() const {
  const size_t d = sizeof(double);
  return (mna_.matrix().size() + base_.matrix().size() + lu_.size() * lu_.size()) * d +
         (mna_.rhs().size() + base_.rhs().size() + xnew_.size() + zero_x_.x.size()) * d +
         lu_.size() * sizeof(size_t);
}

const KernelStats& SolveWorkspace::stats() {
  const size_t now = measured_bytes();
  if (now != setup_bytes_) {
    ++stats_.workspace_regrowths;
    setup_bytes_ = now;
  }
  stats_.workspace_bytes = now;
  return stats_;
}

// ---------------------------------------------------------------------------
// AcKernel

AcKernel::AcKernel(Circuit& ckt) : ckt_(&ckt), dim_((ckt.finalize(), ckt.dim())), mna_(dim_) {
  lu_.reserve(dim_);
  g_.assign(dim_ * dim_, 0.0);
  c_.assign(dim_ * dim_, 0.0);

  // Every shipped device's small-signal stamp is affine in w:
  //   A(w) = G + jwC with real G, C and a w-independent stimulus.
  // One stamp pass at w = 1 therefore yields G = Re(A), C = Im(A).
  stamp_virtual(1.0);
  const std::complex<double>* a = mna_.matrix().data();
  for (size_t i = 0; i < g_.size(); ++i) {
    g_[i] = a[i].real();
    c_[i] = a[i].imag();
  }
  rhs0_ = mna_.rhs();

  // Validate the split with a probe at w = 2. Doubling is exact in binary
  // floating point, so a conforming device matches bit-for-bit; the small
  // relative tolerance only buys headroom for a future device whose stamp
  // is affine up to rounding. Anything worse (w^2 terms, tables, ...)
  // disables the fused path in favor of per-point virtual stamping.
  stamp_virtual(2.0);
  const double scale = std::max(1.0, mna_.matrix().max_abs());
  const double tol = 1e-9 * scale;
  for (size_t i = 0; i < g_.size() && exact_split_; ++i) {
    const std::complex<double> predicted(g_[i], 2.0 * c_[i]);
    if (std::abs(a[i] - predicted) > tol) exact_split_ = false;
  }
  for (size_t i = 0; i < rhs0_.size() && exact_split_; ++i) {
    if (std::abs(mna_.rhs()[i] - rhs0_[i]) > tol) exact_split_ = false;
  }

  setup_bytes_ = measured_bytes();
  stats_.workspace_bytes = setup_bytes_;
}

void AcKernel::stamp_virtual(double omega) {
  mna_.clear();
  for (const auto& d : ckt_->devices()) d->stamp_ac(mna_, omega);
  // Tiny conductance to ground so capacitively floating nodes stay solvable.
  for (size_t i = 0; i < ckt_->num_nodes(); ++i) {
    mna_.add(static_cast<NodeId>(i), static_cast<NodeId>(i), kFloatingNodeGmin);
  }
}

void AcKernel::assemble(double omega) {
  if (exact_split_) {
    std::complex<double>* a = mna_.matrix().data();
    for (size_t i = 0; i < g_.size(); ++i) {
      a[i] = std::complex<double>(g_[i], omega * c_[i]);
    }
    std::copy(rhs0_.begin(), rhs0_.end(), mna_.rhs().begin());
    ++stats_.ac_points_fused;
  } else {
    stamp_virtual(omega);
    ++stats_.ac_points_virtual;
  }
}

void AcKernel::factorize() {
  lu_.factorize(mna_.matrix());
  ++stats_.factorizations;
}

void AcKernel::solve_into(std::vector<std::complex<double>>& out) {
  factorize();
  lu_.solve_into(mna_.rhs(), out);
  ++stats_.solves;
}

void AcKernel::solve_rhs(const std::vector<std::complex<double>>& rhs,
                         std::vector<std::complex<double>>& out) {
  lu_.solve_into(rhs, out);
  ++stats_.solves;
}

size_t AcKernel::measured_bytes() const {
  const size_t z = sizeof(std::complex<double>);
  return (g_.size() + c_.size()) * sizeof(double) +
         (rhs0_.size() + mna_.rhs().size()) * z +
         (mna_.matrix().size() + lu_.size() * lu_.size()) * z + lu_.size() * sizeof(size_t);
}

const KernelStats& AcKernel::stats() {
  const size_t now = measured_bytes();
  if (now != setup_bytes_) {
    ++stats_.workspace_regrowths;
    setup_bytes_ = now;
  }
  stats_.workspace_bytes = now;
  return stats_;
}

}  // namespace ape::spice
