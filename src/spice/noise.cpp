#include "src/spice/noise.h"

#include <cmath>
#include <complex>

#include "src/spice/devices.h"
#include "src/spice/kernel.h"
#include "src/util/error.h"
#include "src/util/matrix.h"

namespace ape::spice {

double NoiseResult::integrated_out_vrms(double f1, double f2) const {
  double acc = 0.0;
  for (size_t k = 1; k < freq_hz.size(); ++k) {
    const double a = freq_hz[k - 1];
    const double b = freq_hz[k];
    if (b < f1 || a > f2) continue;
    const double lo = std::max(a, f1);
    const double hi = std::min(b, f2);
    // Linear interpolation of the PSD inside the panel.
    const double t0 = (lo - a) / (b - a);
    const double t1 = (hi - a) / (b - a);
    const double p0 = out_v2[k - 1] + t0 * (out_v2[k] - out_v2[k - 1]);
    const double p1 = out_v2[k - 1] + t1 * (out_v2[k] - out_v2[k - 1]);
    acc += 0.5 * (p0 + p1) * (hi - lo);
  }
  return std::sqrt(acc);
}

NoiseResult noise_analysis(Circuit& ckt, const std::string& out_node,
                           double f_start, double f_stop,
                           int points_per_decade, const std::string& in_source,
                           KernelStats* kstats) {
  if (f_start <= 0.0 || f_stop < f_start) {
    throw SpecError("noise_analysis: bad frequency range");
  }
  ckt.finalize();
  const size_t dim = ckt.dim();
  const NodeId out = ckt.find_node(out_node);
  if (out == kGround) throw SpecError("noise_analysis: output is ground");

  // Collect every device's noise sources once (op-point dependent).
  std::vector<NoiseSource> sources;
  for (const auto& dev : ckt.devices()) dev->noise_sources(sources);

  const VSource* input = nullptr;
  if (!in_source.empty()) {
    input = &ckt.find_as<VSource>(in_source);
  }

  NoiseResult res;
  const double decades = std::log10(f_stop / f_start);
  const int n = std::max(2, static_cast<int>(std::ceil(decades * points_per_decade)) + 1);
  // Compiled kernel: fused G + jwC assembly per point, one in-place
  // factorization reused for the stimulus solve plus one solve per
  // noise source. All buffers live for the whole sweep.
  AcKernel kern(ckt);
  std::vector<std::complex<double>> rhs(dim, {0.0, 0.0});
  std::vector<std::complex<double>> x(dim);
  const double ratio = std::pow(10.0, decades / (n - 1));
  double f = f_start;
  for (int k = 0; k < n; ++k) {
    kern.assemble(2.0 * M_PI * f);
    kern.factorize();

    // Signal transfer (for input referral): the circuit's own AC stimulus.
    double h2 = 0.0;
    if (input != nullptr) {
      kern.solve_rhs(kern.mna().rhs(), x);
      const std::complex<double> h =
          out == kGround ? 0.0 : x[static_cast<size_t>(out)];
      h2 = std::norm(h);
    }

    // One solve per noise source: unit current injected p -> n.
    double psd_out = 0.0;
    for (const auto& src : sources) {
      if (src.p != kGround) rhs[static_cast<size_t>(src.p)] = {1.0, 0.0};
      if (src.n != kGround) rhs[static_cast<size_t>(src.n)] = {-1.0, 0.0};
      kern.solve_rhs(rhs, x);
      if (src.p != kGround) rhs[static_cast<size_t>(src.p)] = {0.0, 0.0};
      if (src.n != kGround) rhs[static_cast<size_t>(src.n)] = {0.0, 0.0};
      const double gain2 = std::norm(x[static_cast<size_t>(out)]);
      psd_out += gain2 * src.psd(f);
    }

    res.freq_hz.push_back(f);
    res.out_v2.push_back(psd_out);
    res.in_v2.push_back(h2 > 0.0 ? psd_out / h2 : 0.0);
    f *= ratio;
  }
  if (kstats != nullptr) *kstats = kern.stats();
  return res;
}

}  // namespace ape::spice
