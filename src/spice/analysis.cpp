#include "src/spice/analysis.h"

#include <algorithm>
#include <cmath>

#include "src/spice/devices.h"
#include "src/util/matrix.h"

namespace ape::spice {
namespace {

/// One damped Newton solve of the (already finalized) circuit at a fixed
/// gmin / source scale. Returns true on convergence; x is updated in place.
bool newton_dc(Circuit& ckt, Solution& x, double gmin, double src_scale,
               const DcOptions& opts) {
  const size_t dim = ckt.dim();
  const size_t n_nodes = ckt.num_nodes();
  MnaReal mna(dim);
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    mna.clear();
    for (const auto& dev : ckt.devices()) dev->stamp_dc(mna, x, src_scale);
    for (size_t i = 0; i < n_nodes; ++i) {
      mna.add(static_cast<NodeId>(i), static_cast<NodeId>(i), gmin);
    }
    std::vector<double> xnew;
    try {
      LuSolver<double> lu(mna.matrix());
      xnew = lu.solve(mna.rhs());
    } catch (const NumericError&) {
      return false;
    }

    // Damp node-voltage updates; branch currents move freely. The ratio
    // is capped so every iteration closes at least a fixed fraction of
    // the remaining gap - otherwise circuits with legitimately large
    // internal swings (ideal-gain macromodels) would need |dv|/limit
    // iterations instead of log(|dv|).
    bool converged = true;
    double max_ratio = 1.0;
    for (size_t i = 0; i < n_nodes; ++i) {
      const double dv = std::fabs(xnew[i] - x.x[i]);
      if (dv > opts.vstep_limit) max_ratio = std::max(max_ratio, dv / opts.vstep_limit);
    }
    max_ratio = std::min(max_ratio, opts.max_damping_ratio);
    for (size_t i = 0; i < dim; ++i) {
      const double step = (xnew[i] - x.x[i]) / max_ratio;
      const double next = x.x[i] + step;
      const double tol = (i < n_nodes)
                             ? opts.vntol + opts.reltol * std::max(std::fabs(next), std::fabs(x.x[i]))
                             : opts.abstol + opts.reltol * std::max(std::fabs(next), std::fabs(x.x[i]));
      if (std::fabs(step) > tol) converged = false;
      x.x[i] = next;
    }
    if (converged && max_ratio == 1.0 && iter > 0) return true;
  }
  return false;
}

}  // namespace

Solution dc_operating_point(Circuit& ckt, const DcOptions& opts) {
  ckt.finalize();
  Solution x;
  x.x.assign(ckt.dim(), 0.0);

  // Plan A: gmin stepping from a heavily damped system down to ~ideal.
  bool ok = true;
  for (double gmin : opts.gmin_steps) {
    if (!newton_dc(ckt, x, gmin, 1.0, opts)) {
      ok = false;
      break;
    }
  }

  if (!ok) {
    // Plan B: source stepping with a fixed medium gmin, then the ladder.
    x.x.assign(ckt.dim(), 0.0);
    ok = true;
    for (double s : opts.source_steps) {
      if (!newton_dc(ckt, x, 1e-9, s, opts)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (double gmin : opts.gmin_steps) {
        if (!newton_dc(ckt, x, gmin, 1.0, opts)) {
          ok = false;
          break;
        }
      }
    }
  }
  if (!ok) {
    throw NumericError("dc_operating_point: Newton failed to converge for '" +
                       ckt.title() + "'");
  }
  for (const auto& dev : ckt.devices()) dev->save_op(x);
  return x;
}

double node_voltage(const Circuit& ckt, const Solution& sol, const std::string& node) {
  return sol.at(ckt.find_node(node));
}

double source_current(Circuit& ckt, const Solution& sol, const std::string& vsource) {
  auto& vs = ckt.find_as<VSource>(vsource);
  return sol.at(vs.branch());
}

DcSweepResult dc_sweep(Circuit& ckt, const std::string& vsource, double start,
                       double stop, double step, const DcOptions& opts) {
  if (step <= 0.0 || stop < start) throw SpecError("dc_sweep: bad range");
  auto& vs = ckt.find_as<VSource>(vsource);
  const double original = vs.wave().dc;

  DcSweepResult res;
  // Full gmin-stepped solve at the first point; subsequent points are a
  // single warm-started Newton pass at the final gmin.
  vs.wave().dc = start;
  Solution x = dc_operating_point(ckt, opts);
  res.values.push_back(start);
  res.solutions.push_back(x);
  for (double v = start + step; v <= stop + 0.5 * step; v += step) {
    vs.wave().dc = v;
    if (!newton_dc(ckt, x, opts.gmin_steps.back(), 1.0, opts)) {
      // Fall back to the full ladder if the warm start fails.
      x.x.assign(ckt.dim(), 0.0);
      x = dc_operating_point(ckt, opts);
    }
    res.values.push_back(v);
    res.solutions.push_back(x);
  }
  for (const auto& dev : ckt.devices()) dev->save_op(x);
  vs.wave().dc = original;
  return res;
}

AcResult ac_analysis(Circuit& ckt, double f_start, double f_stop,
                     int points_per_decade) {
  if (!ckt.finalized()) {
    throw Error("ac_analysis: run dc_operating_point first");
  }
  if (f_start <= 0.0 || f_stop < f_start) {
    throw SpecError("ac_analysis: bad frequency range");
  }
  AcResult out;
  const double decades = std::log10(f_stop / f_start);
  const int n = std::max(2, static_cast<int>(std::ceil(decades * points_per_decade)) + 1);
  const size_t dim = ckt.dim();
  MnaComplex mna(dim);
  for (int k = 0; k < n; ++k) {
    const double f = f_start * std::pow(10.0, decades * k / (n - 1));
    const double omega = 2.0 * M_PI * f;
    mna.clear();
    for (const auto& dev : ckt.devices()) dev->stamp_ac(mna, omega);
    // Tiny diagonal keeps capacitively-floating nodes solvable.
    for (size_t i = 0; i < ckt.num_nodes(); ++i) {
      mna.add(static_cast<NodeId>(i), static_cast<NodeId>(i), {1e-12, 0.0});
    }
    LuSolver<std::complex<double>> lu(mna.matrix());
    out.freq_hz.push_back(f);
    out.solutions.push_back(lu.solve(mna.rhs()));
  }
  return out;
}

TranResult transient(Circuit& ckt, double t_step, double t_stop,
                     const TranOptions& opts) {
  if (t_step <= 0.0 || t_stop <= t_step) {
    throw SpecError("transient: bad time range");
  }
  Solution x = dc_operating_point(ckt);

  TranResult out;
  out.time_s.push_back(0.0);
  out.solutions.push_back(x);

  const size_t dim = ckt.dim();
  const size_t n_nodes = ckt.num_nodes();
  MnaReal mna(dim);

  double t = 0.0;
  bool first = true;
  while (t < t_stop - 1e-15) {
    double dt = std::min(t_step, t_stop - t);
    // Try the step; on Newton failure halve dt (bounded retries).
    int halvings = 0;
    for (;;) {
      TranContext tc{dt, t + dt, first};
      Solution xc = x;  // start Newton from previous accepted point
      bool converged = false;
      for (int iter = 0; iter < opts.max_iterations; ++iter) {
        mna.clear();
        for (const auto& dev : ckt.devices()) dev->stamp_tran(mna, xc, tc);
        for (size_t i = 0; i < n_nodes; ++i) {
          mna.add(static_cast<NodeId>(i), static_cast<NodeId>(i), 1e-12);
        }
        std::vector<double> xnew;
        try {
          LuSolver<double> lu(mna.matrix());
          xnew = lu.solve(mna.rhs());
        } catch (const NumericError&) {
          break;
        }
        converged = true;
        for (size_t i = 0; i < dim; ++i) {
          const double step = xnew[i] - xc.x[i];
          const double tol = opts.vntol + opts.reltol *
                                 std::max(std::fabs(xnew[i]), std::fabs(xc.x[i]));
          if (std::fabs(step) > tol) converged = false;
          xc.x[i] = xnew[i];
        }
        if (converged && iter > 0) break;
        converged = false;
      }
      if (converged) {
        for (const auto& dev : ckt.devices()) dev->accept_tran_step(xc, tc);
        x = std::move(xc);
        t += dt;
        first = false;
        // Record only the user-grid points when we sub-stepped.
        out.time_s.push_back(t);
        out.solutions.push_back(x);
        break;
      }
      if (++halvings > opts.max_step_halvings) {
        throw NumericError("transient: Newton failed at t=" + std::to_string(t));
      }
      dt *= 0.5;
    }
  }
  return out;
}

}  // namespace ape::spice
