#include "src/spice/analysis.h"

#include <algorithm>
#include <cmath>

#include "src/spice/devices.h"
#include "src/spice/fault.h"
#include "src/spice/kernel.h"
#include "src/util/matrix.h"
#include "src/util/units.h"

namespace ape::spice {
namespace {

/// True when every entry of \p v is finite. A single NaN/inf from a
/// near-singular solve or a poisoned stamp would otherwise masquerade as
/// a huge Newton update and burn the whole iteration budget.
bool all_finite(const std::vector<double>& v) {
  for (double e : v) {
    if (!std::isfinite(e)) return false;
  }
  return true;
}

/// One damped Newton solve of the (already finalized) circuit at a fixed
/// gmin / source scale, on the caller's compiled workspace. Returns true
/// on convergence; x is updated in place. Counters are accumulated into
/// \p rep when non-null.
bool newton_dc(Circuit& ckt, SolveWorkspace& ws, Solution& x, double gmin,
               double src_scale, const DcOptions& opts, ConvergenceReport* rep) {
  const size_t dim = ckt.dim();
  const size_t n_nodes = ckt.num_nodes();
  FaultInjector* fi = fault_injector();
  // gmin and src_scale are fixed for the whole call, so the linear part
  // of the system is too: stamp it once, restore per iteration.
  ws.build_dc_baseline(gmin, src_scale);
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    ws.assemble_dc(x, src_scale);
    if (fi != nullptr) fi->on_assembly(ws.mna());
    if (rep != nullptr) ++rep->newton_iterations;
    const std::vector<double>* solved = nullptr;
    try {
      if (fi != nullptr && fi->on_lu_solve()) {
        throw NumericError("LU: injected singular matrix");
      }
      solved = &ws.solve();
    } catch (const NumericError&) {
      if (rep != nullptr) ++rep->lu_failures;
      return false;
    }
    const std::vector<double>& xnew = *solved;
    // Fail fast on a non-finite solution: iterating from NaN can never
    // recover, so report non-convergence and let the ladder move on.
    if (!all_finite(xnew)) {
      if (rep != nullptr) ++rep->nonfinite_rejections;
      return false;
    }

    // Damp node-voltage updates; branch currents move freely. The ratio
    // is capped so every iteration closes at least a fixed fraction of
    // the remaining gap - otherwise circuits with legitimately large
    // internal swings (ideal-gain macromodels) would need |dv|/limit
    // iterations instead of log(|dv|).
    bool converged = true;
    double max_ratio = 1.0;
    for (size_t i = 0; i < n_nodes; ++i) {
      const double dv = std::fabs(xnew[i] - x.x[i]);
      if (dv > opts.vstep_limit) max_ratio = std::max(max_ratio, dv / opts.vstep_limit);
    }
    max_ratio = std::min(max_ratio, opts.max_damping_ratio);
    for (size_t i = 0; i < dim; ++i) {
      const double step = (xnew[i] - x.x[i]) / max_ratio;
      const double next = x.x[i] + step;
      const double tol = (i < n_nodes)
                             ? opts.vntol + opts.reltol * std::max(std::fabs(next), std::fabs(x.x[i]))
                             : opts.abstol + opts.reltol * std::max(std::fabs(next), std::fabs(x.x[i]));
      if (std::fabs(step) > tol) converged = false;
      x.x[i] = next;
    }
    if (converged && max_ratio == 1.0 && iter > 0) {
      if (fi != nullptr && fi->on_dc_convergence(gmin, src_scale)) {
        if (rep != nullptr) ++rep->convergence_vetoes;
        return false;
      }
      return true;
    }
  }
  return false;
}

/// Throw when the cooperative budget expired (checked between rungs so a
/// deadline can never abandon a half-updated solution vector). Polls the
/// options budget AND the thread's ambient job budget, so a supervisor
/// deadline or cancellation reaches solves that never saw the options.
void check_budget(const RunBudget* budget, const char* where) {
  if (const RunBudget* b = exhausted_budget(budget)) {
    throw NumericError(std::string(where) + ": " + b->exhaust_reason());
  }
}

/// Resolve the effective DC options for this call: when the thread runs
/// under an ambient SolverRelaxation (the supervision ladder's relaxed
/// rung), widen the tolerances and stop the gmin ladder at the relaxed
/// floor; otherwise \p opts passes through untouched.
const DcOptions* effective_dc_options(const DcOptions& opts, DcOptions& storage,
                                      ConvergenceReport* rep) {
  const SolverRelaxation* rx = ambient_relaxation();
  if (rx == nullptr) return &opts;
  storage = opts;
  storage.reltol *= rx->tol_factor;
  storage.vntol *= rx->tol_factor;
  storage.abstol *= rx->tol_factor;
  std::vector<double> rungs;
  for (double g : storage.gmin_steps) {
    if (g >= rx->gmin_floor * 0.999) rungs.push_back(g);
  }
  if (!rungs.empty()) storage.gmin_steps = std::move(rungs);
  if (rep != nullptr) rep->relaxed_tolerances = true;
  return &storage;
}

/// Summarize the run's numerical health into the report. The kernel's
/// per-solve NumericHealth record only describes the last solve; the
/// report-level record takes the run-wide view from the accumulated
/// KernelStats gauges and counters (DESIGN.md section 15).
void fill_report_health(ConvergenceReport* rep) {
  const KernelStats& k = rep->kernel;
  rep->health.cond_estimate = k.cond_estimate_max;
  rep->health.pivot_growth = k.pivot_growth_max;
  rep->health.residual_norm = k.residual_norm_max;
  rep->health.refinement_iterations = static_cast<int>(k.refinement_iterations);
  rep->health.equilibrated = k.equilibrated_solves > 0;
  rep->health.recovered = k.numeric_recoveries > 0;
}

}  // namespace

Solution dc_operating_point(Circuit& ckt, const DcOptions& caller_opts) {
  ErrorContext scope("dc('" + ckt.title() + "')");
  ckt.finalize();
  ConvergenceReport local_report;
  ConvergenceReport* rep =
      caller_opts.report != nullptr ? caller_opts.report : &local_report;
  *rep = ConvergenceReport{};
  DcOptions relaxed_storage;
  const DcOptions& opts = *effective_dc_options(caller_opts, relaxed_storage, rep);
  if (opts.preflight) opts.preflight(ckt);
  Solution x;
  x.x.assign(ckt.dim(), 0.0);
  SolveWorkspace ws(ckt);

  // Plan A: gmin stepping from a heavily damped system down to ~ideal.
  bool ok = true;
  for (double gmin : opts.gmin_steps) {
    check_budget(opts.budget, "dc_operating_point");
    if (!newton_dc(ckt, ws, x, gmin, 1.0, opts, rep)) {
      ok = false;
      break;
    }
    ++rep->gmin_rungs_completed;
    rep->final_gmin = gmin;
  }
  if (ok) rep->plan = DcPlan::GminLadder;

  if (!ok) {
    // Plan B: source stepping with a fixed medium gmin, then the ladder.
    x.x.assign(ckt.dim(), 0.0);
    rep->gmin_rungs_completed = 0;
    ok = true;
    for (double s : opts.source_steps) {
      check_budget(opts.budget, "dc_operating_point");
      if (!newton_dc(ckt, ws, x, 1e-9, s, opts, rep)) {
        ok = false;
        break;
      }
      ++rep->source_steps_completed;
    }
    if (ok) {
      for (double gmin : opts.gmin_steps) {
        check_budget(opts.budget, "dc_operating_point");
        if (!newton_dc(ckt, ws, x, gmin, 1.0, opts, rep)) {
          ok = false;
          break;
        }
        ++rep->gmin_rungs_completed;
        rep->final_gmin = gmin;
      }
    }
    if (ok) rep->plan = DcPlan::SourceStepping;
  }
  rep->kernel = ws.stats();
  fill_report_health(rep);
  if (!ok) {
    throw NumericError("dc_operating_point: Newton failed to converge for '" +
                       ckt.title() + "' (" + rep->summary() + ")");
  }
  rep->converged = true;
  for (const auto& dev : ckt.devices()) dev->save_op(x);
  return x;
}

double node_voltage(const Circuit& ckt, const Solution& sol, const std::string& node) {
  return sol.at(ckt.find_node(node));
}

double source_current(Circuit& ckt, const Solution& sol, const std::string& vsource) {
  auto& vs = ckt.find_as<VSource>(vsource);
  return sol.at(vs.branch());
}

DcSweepResult dc_sweep(Circuit& ckt, const std::string& vsource, double start,
                       double stop, double step, const DcOptions& opts) {
  ErrorContext scope("dc_sweep('" + vsource + "')");
  if (step <= 0.0 || stop < start) throw SpecError("dc_sweep: bad range");
  auto& vs = ckt.find_as<VSource>(vsource);
  const double original = vs.wave().dc;

  // Full-ladder solve at the current sweep value; a failure restores the
  // source and reports exactly which sweep point could not converge.
  auto solve_at = [&](double v, Solution& x) {
    try {
      x = dc_operating_point(ckt, opts);
    } catch (const Error& e) {
      vs.wave().dc = original;
      throw NumericError("dc_sweep('" + vsource + "'): failed at sweep value " +
                         units::format_eng(v) + " V: " + e.what());
    }
  };

  DcSweepResult res;
  // Full gmin-stepped solve at the first point; subsequent points are a
  // single warm-started Newton pass at the final gmin on a sweep-wide
  // compiled workspace.
  vs.wave().dc = start;
  Solution x;
  solve_at(start, x);
  res.values.push_back(start);
  res.solutions.push_back(x);
  SolveWorkspace ws(ckt);
  // Integer point index so the sweep grid has no accumulated FP drift:
  // point i sits at exactly start + i * step.
  const long n_steps = static_cast<long>(std::floor((stop - start) / step + 0.5));
  for (long i = 1; i <= n_steps; ++i) {
    const double v = start + static_cast<double>(i) * step;
    vs.wave().dc = v;
    if (const RunBudget* b = exhausted_budget(opts.budget)) {
      vs.wave().dc = original;
      throw NumericError("dc_sweep('" + vsource + "'): " + b->exhaust_reason() +
                         " at sweep value " + units::format_eng(v) + " V");
    }
    if (!newton_dc(ckt, ws, x, opts.gmin_steps.back(), 1.0, opts, opts.report)) {
      // Fall back to the full ladder if the warm start fails.
      x.x.assign(ckt.dim(), 0.0);
      solve_at(v, x);
    }
    res.values.push_back(v);
    res.solutions.push_back(x);
  }
  if (opts.report != nullptr) opts.report->kernel.accumulate(ws.stats());
  for (const auto& dev : ckt.devices()) dev->save_op(x);
  vs.wave().dc = original;
  return res;
}

AcResult ac_analysis(Circuit& ckt, double f_start, double f_stop,
                     int points_per_decade, KernelStats* kstats) {
  ErrorContext scope("ac('" + ckt.title() + "')");
  if (!ckt.finalized()) {
    throw Error("ac_analysis: run dc_operating_point first");
  }
  if (f_start <= 0.0 || f_stop < f_start) {
    throw SpecError("ac_analysis: bad frequency range");
  }
  AcResult out;
  const double decades = std::log10(f_stop / f_start);
  const int n = std::max(2, static_cast<int>(std::ceil(decades * points_per_decade)) + 1);
  const size_t dim = ckt.dim();
  // Compile G / C / stimulus once; the sweep itself is a fused G + jwC
  // fill plus an in-place factorization per point — no stamping, no
  // allocation. The floating-node gmin diagonal and the log-grid ratio
  // (formerly a pow() per point) are both hoisted out of the loop.
  AcKernel kern(ckt);
  out.freq_hz.resize(static_cast<size_t>(n));
  out.solutions.assign(static_cast<size_t>(n), std::vector<std::complex<double>>(dim));
  const double ratio = std::pow(10.0, decades / (n - 1));
  double f = f_start;
  for (int k = 0; k < n; ++k) {
    // AC has no per-call budget knob; the poll here exists so a
    // supervisor's ambient job deadline / cancellation also reaches
    // frequency sweeps (they are the long pole of opamp verification).
    // Polling once per block keeps the steady-state loop a straight run
    // of assemble/factorize/solve; a block is well under the supervision
    // deadline granularity (deadlines are wall-clock seconds).
    if ((k & 7) == 0) {
      if (const RunBudget* b = exhausted_budget(nullptr)) {
        throw NumericError("ac_analysis: " + std::string(b->exhaust_reason()) +
                           " at f=" + units::format_eng(f) + " Hz");
      }
    }
    kern.assemble(2.0 * M_PI * f);
    kern.solve_into(out.solutions[static_cast<size_t>(k)]);
    out.freq_hz[static_cast<size_t>(k)] = f;
    f *= ratio;
  }
  if (kstats != nullptr) *kstats = kern.stats();
  return out;
}

TranResult transient(Circuit& ckt, double t_step, double t_stop,
                     const TranOptions& caller_opts) {
  ErrorContext scope("transient('" + ckt.title() + "')");
  if (t_step <= 0.0 || t_stop <= t_step) {
    throw SpecError("transient: bad time range");
  }
  ConvergenceReport local_report;
  ConvergenceReport* rep =
      caller_opts.report != nullptr ? caller_opts.report : &local_report;
  *rep = ConvergenceReport{};
  // The relaxed supervision rung widens transient tolerances and allows
  // extra sub-stepping, mirroring effective_dc_options for DC.
  TranOptions relaxed_storage;
  const TranOptions* eff = &caller_opts;
  if (const SolverRelaxation* rx = ambient_relaxation()) {
    relaxed_storage = caller_opts;
    relaxed_storage.reltol *= rx->tol_factor;
    relaxed_storage.vntol *= rx->tol_factor;
    relaxed_storage.max_step_halvings += rx->extra_step_halvings;
    eff = &relaxed_storage;
    rep->relaxed_tolerances = true;
  }
  const TranOptions& opts = *eff;
  Solution x = dc_operating_point(ckt);

  TranResult out;
  out.time_s.push_back(0.0);
  out.solutions.push_back(x);

  const size_t dim = ckt.dim();
  FaultInjector* fi = fault_injector();
  SolveWorkspace ws(ckt);
  Solution xc;  // Newton candidate, hoisted so the copy-assign below
                // reuses its capacity (no per-attempt allocation)

  double t = 0.0;
  bool first = true;
  while (t < t_stop - 1e-15) {
    // Advance one user-grid interval; sub-steps taken on Newton failure
    // stay internal so the output grid is exactly the user grid.
    const double t_target = std::min(t + t_step, t_stop);
    double dt = t_target - t;
    int halvings = 0;
    while (t < t_target - 1e-15) {
      if (const RunBudget* b = exhausted_budget(opts.budget)) {
        throw NumericError("transient: " + std::string(b->exhaust_reason()) +
                           " at t=" + units::format_eng(t) + " s");
      }
      dt = std::min(dt, t_target - t);
      TranContext tc{dt, t + dt, first};
      xc = x;  // start Newton from previous accepted point
      bool converged = false;
      const bool vetoed = fi != nullptr && fi->on_transient_step();
      if (vetoed) ++rep->convergence_vetoes;
      // dt, time and the integrator state are fixed for the whole solve
      // attempt, so the linear companion stamps are too.
      if (!vetoed) ws.build_tran_baseline(tc);
      for (int iter = 0; !vetoed && iter < opts.max_iterations; ++iter) {
        ws.assemble_tran(xc, tc);
        if (fi != nullptr) fi->on_assembly(ws.mna());
        ++rep->newton_iterations;
        const std::vector<double>* solved = nullptr;
        try {
          if (fi != nullptr && fi->on_lu_solve()) {
            throw NumericError("LU: injected singular matrix");
          }
          solved = &ws.solve();
        } catch (const NumericError&) {
          ++rep->lu_failures;
          break;
        }
        const std::vector<double>& xnew = *solved;
        // Fail fast on non-finite solutions (poisoned stamp, blow-up):
        // halving dt is the only move with a chance of recovering.
        if (!all_finite(xnew)) {
          ++rep->nonfinite_rejections;
          break;
        }
        converged = true;
        for (size_t i = 0; i < dim; ++i) {
          const double step = xnew[i] - xc.x[i];
          const double tol = opts.vntol + opts.reltol *
                                 std::max(std::fabs(xnew[i]), std::fabs(xc.x[i]));
          if (std::fabs(step) > tol) converged = false;
          xc.x[i] = xnew[i];
        }
        if (converged && iter > 0) break;
        converged = false;
      }
      if (converged) {
        for (const auto& dev : ckt.devices()) dev->accept_tran_step(xc, tc);
        x.x.swap(xc.x);  // keep xc's buffer alive for the next attempt
        t += dt;
        first = false;
        continue;
      }
      if (++halvings > opts.max_step_halvings) {
        throw NumericError("transient: Newton failed at t=" +
                           units::format_eng(t) + " s (" + rep->summary() + ")");
      }
      ++rep->step_halvings;
      dt *= 0.5;
    }
    t = t_target;  // land exactly on the grid point (no FP drift)
    out.time_s.push_back(t);
    out.solutions.push_back(x);
  }
  rep->kernel.accumulate(ws.stats());
  fill_report_health(rep);
  rep->converged = true;
  return out;
}

}  // namespace ape::spice
