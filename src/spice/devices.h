#pragma once
/// \file devices.h
/// Concrete circuit elements: R, C, L, independent sources (DC/AC/PULSE/
/// SIN/PWL), the four controlled sources, diode, and the MOSFET.

#include <memory>
#include <utility>
#include <vector>

#include "src/spice/device.h"
#include "src/spice/mos_model.h"

namespace ape::spice {

/// Companion-model state for one capacitance between two nodes.
/// Trapezoidal integration with a backward-Euler first step.
struct CapCompanion {
  double v_prev = 0.0;  ///< voltage across at last accepted step
  double i_prev = 0.0;  ///< current through at last accepted step

  void stamp(MnaReal& mna, NodeId p, NodeId n, double c, const Solution& x,
             const TranContext& tc) const;
  void accept(NodeId p, NodeId n, double c, const Solution& x,
              const TranContext& tc);
};

// ---------------------------------------------------------------------------

class Resistor : public Device {
public:
  Resistor(std::string name, NodeId p, NodeId n, double ohms);

  void stamp_dc(MnaReal& mna, const Solution& x, double src_scale) const override;
  void stamp_ac(MnaComplex& mna, double omega) const override;
  void noise_sources(std::vector<NoiseSource>& out) const override;

  double resistance() const { return ohms_; }
  DeviceStructure structure() const override;

private:
  NodeId p_, n_;
  double ohms_;
};

class Capacitor : public Device {
public:
  Capacitor(std::string name, NodeId p, NodeId n, double farads);

  void stamp_dc(MnaReal& mna, const Solution& x, double src_scale) const override;
  void stamp_ac(MnaComplex& mna, double omega) const override;
  void stamp_tran(MnaReal& mna, const Solution& x, const TranContext& tc) const override;
  void save_op(const Solution& x) override;
  void accept_tran_step(const Solution& x, const TranContext& tc) override;

  double capacitance() const { return farads_; }
  DeviceStructure structure() const override;

private:
  NodeId p_, n_;
  double farads_;
  CapCompanion state_;
};

class Inductor : public Device {
public:
  Inductor(std::string name, NodeId p, NodeId n, double henries);

  void claim_branches(size_t& next_branch) override;
  void stamp_dc(MnaReal& mna, const Solution& x, double src_scale) const override;
  void stamp_ac(MnaComplex& mna, double omega) const override;
  void stamp_tran(MnaReal& mna, const Solution& x, const TranContext& tc) const override;
  void save_op(const Solution& x) override;
  void accept_tran_step(const Solution& x, const TranContext& tc) override;

  double inductance() const { return henries_; }
  DeviceStructure structure() const override;

private:
  NodeId p_, n_;
  double henries_;
  NodeId branch_ = kGround;
  double i_prev_ = 0.0;
  double v_prev_ = 0.0;
};

// ---------------------------------------------------------------------------

/// Time-domain waveform of an independent source.
struct Waveform {
  enum class Kind { Dc, Pulse, Sin, Pwl };
  Kind kind = Kind::Dc;
  double dc = 0.0;

  // AC small-signal stimulus.
  double ac_mag = 0.0;
  double ac_phase_deg = 0.0;

  // PULSE(v1 v2 td tr tf pw per)
  double v1 = 0.0, v2 = 0.0, td = 0.0, tr = 1e-9, tf = 1e-9, pw = 1e-3,
         per = 2e-3;
  // SIN(vo va freq td theta)
  double sin_vo = 0.0, sin_va = 0.0, sin_freq = 1e3, sin_td = 0.0,
         sin_theta = 0.0;
  // PWL(t1 v1 t2 v2 ...)
  std::vector<std::pair<double, double>> pwl;

  /// Instantaneous value at time \p t (DC value for t <= 0 conventions).
  double value(double t) const;
};

class VSource : public Device {
public:
  VSource(std::string name, NodeId p, NodeId n, Waveform wave);

  void claim_branches(size_t& next_branch) override;
  void stamp_dc(MnaReal& mna, const Solution& x, double src_scale) const override;
  void stamp_ac(MnaComplex& mna, double omega) const override;
  void stamp_tran(MnaReal& mna, const Solution& x, const TranContext& tc) const override;

  /// MNA index of the branch current (valid after Circuit::finalize()).
  NodeId branch() const { return branch_; }
  const Waveform& wave() const { return wave_; }
  Waveform& wave() { return wave_; }
  DeviceStructure structure() const override;

private:
  NodeId p_, n_;
  Waveform wave_;
  NodeId branch_ = kGround;
};

class ISource : public Device {
public:
  ISource(std::string name, NodeId p, NodeId n, Waveform wave);

  void stamp_dc(MnaReal& mna, const Solution& x, double src_scale) const override;
  void stamp_ac(MnaComplex& mna, double omega) const override;
  void stamp_tran(MnaReal& mna, const Solution& x, const TranContext& tc) const override;

  const Waveform& wave() const { return wave_; }
  DeviceStructure structure() const override;

private:
  NodeId p_, n_;
  Waveform wave_;
};

// ---------------------------------------------------------------------------

/// VCVS: v(p,n) = gain * v(cp, cn). SPICE 'E' element.
class Vcvs : public Device {
public:
  Vcvs(std::string name, NodeId p, NodeId n, NodeId cp, NodeId cn, double gain);

  void claim_branches(size_t& next_branch) override;
  void stamp_dc(MnaReal& mna, const Solution& x, double src_scale) const override;
  void stamp_ac(MnaComplex& mna, double omega) const override;
  DeviceStructure structure() const override;

private:
  NodeId p_, n_, cp_, cn_;
  double gain_;
  NodeId branch_ = kGround;
};

/// VCCS: i(p->n) = gm * v(cp, cn). SPICE 'G' element.
class Vccs : public Device {
public:
  Vccs(std::string name, NodeId p, NodeId n, NodeId cp, NodeId cn, double gm);

  void stamp_dc(MnaReal& mna, const Solution& x, double src_scale) const override;
  void stamp_ac(MnaComplex& mna, double omega) const override;
  DeviceStructure structure() const override;

private:
  NodeId p_, n_, cp_, cn_;
  double gm_;
};

/// CCCS: i(p->n) = gain * i(branch of controlling VSource). SPICE 'F'.
class Cccs : public Device {
public:
  Cccs(std::string name, NodeId p, NodeId n, const VSource* ctrl, double gain);

  void stamp_dc(MnaReal& mna, const Solution& x, double src_scale) const override;
  void stamp_ac(MnaComplex& mna, double omega) const override;
  DeviceStructure structure() const override;

private:
  NodeId p_, n_;
  const VSource* ctrl_;
  double gain_;
};

/// CCVS: v(p,n) = r * i(branch of controlling VSource). SPICE 'H'.
class Ccvs : public Device {
public:
  Ccvs(std::string name, NodeId p, NodeId n, const VSource* ctrl, double r);

  void claim_branches(size_t& next_branch) override;
  void stamp_dc(MnaReal& mna, const Solution& x, double src_scale) const override;
  void stamp_ac(MnaComplex& mna, double omega) const override;
  DeviceStructure structure() const override;

private:
  NodeId p_, n_;
  const VSource* ctrl_;
  double r_;
  NodeId branch_ = kGround;
};

// ---------------------------------------------------------------------------

/// Junction diode, exponential model with internal voltage limiting.
class Diode : public Device {
public:
  Diode(std::string name, NodeId p, NodeId n, double is = 1e-14, double n_emission = 1.0);

  bool is_nonlinear() const override { return true; }
  void stamp_dc(MnaReal& mna, const Solution& x, double src_scale) const override;
  void save_op(const Solution& x) override;
  void stamp_ac(MnaComplex& mna, double omega) const override;
  DeviceStructure structure() const override;

private:
  NodeId p_, n_;
  double is_, nf_;
  double gd_op_ = 0.0;
};

// ---------------------------------------------------------------------------

/// Four-terminal MOSFET bound to a .model card.
class Mosfet : public Device {
public:
  Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
         const MosModelCard* model, double w, double l, double ad = 0.0,
         double as = 0.0, double pd = 0.0, double ps = 0.0);

  bool is_nonlinear() const override { return true; }
  void stamp_dc(MnaReal& mna, const Solution& x, double src_scale) const override;
  void save_op(const Solution& x) override;
  void stamp_ac(MnaComplex& mna, double omega) const override;
  void stamp_tran(MnaReal& mna, const Solution& x, const TranContext& tc) const override;
  void accept_tran_step(const Solution& x, const TranContext& tc) override;
  void noise_sources(std::vector<NoiseSource>& out) const override;

  /// Cached operating-point evaluation from the last save_op().
  const MosEval& op() const { return op_; }
  double width() const { return w_; }
  double length() const { return l_; }
  const MosModelCard& model() const { return *model_; }

  /// Change the geometry in place (used by the synthesis engine).
  void resize(double w, double l);

  DeviceStructure structure() const override;

private:
  /// NMOS-normalized evaluation at candidate x, plus the drain-terminal
  /// current with true sign.
  MosEval eval_at(const Solution& x, double* id_true) const;

  NodeId d_, g_, s_, b_;
  const MosModelCard* model_;
  double w_, l_, ad_, as_, pd_, ps_;
  MosEval op_;
  // Transient companion state for the five Meyer/junction capacitances.
  CapCompanion cgs_st_, cgd_st_, cgb_st_, cdb_st_, csb_st_;
};

}  // namespace ape::spice
