#pragma once
/// \file parser.h
/// SPICE netlist and .model card parser.
///
/// Supported elements: R, C, L, V, I, E (VCVS), G (VCCS), F (CCCS),
/// H (CCVS), D (diode), M (MOSFET). Supported cards: .model (nmos/pmos,
/// level 1/2/3), .end. Lines starting with '*' are comments; '+' is a
/// continuation; everything is case-insensitive; engineering suffixes
/// (k, u, meg, ...) are accepted on all numbers.
///
/// Independent sources accept: <dc-value>, DC <v>, AC <mag> [<phase>],
/// PULSE(v1 v2 td tr tf pw per), SIN(vo va freq [td theta]),
/// PWL(t1 v1 t2 v2 ...), in any combination.

#include <string>

#include "src/spice/circuit.h"

namespace ape::spice {

/// Parse a full netlist (first line is the title, per SPICE convention).
/// Throws ParseError with a line number on malformed input.
Circuit parse_netlist(const std::string& text);

/// Parse a single ".model name nmos|pmos (k=v ...)" card body.
/// \p line is the full card text including the ".model" keyword.
MosModelCard parse_model_card(const std::string& line);

}  // namespace ape::spice
