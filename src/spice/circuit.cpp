#include "src/spice/circuit.h"

#include <algorithm>
#include <cctype>

namespace ape::spice {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

bool is_ground_name(const std::string& name) {
  const std::string l = lower(name);
  return l == "0" || l == "gnd" || l == "ground";
}

}  // namespace

NodeId Circuit::node(const std::string& name) {
  if (is_ground_name(name)) return kGround;
  const std::string key = lower(name);
  auto it = node_ids_.find(key);
  if (it != node_ids_.end()) return it->second;
  ensure_not_finalized();
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(name);
  node_ids_.emplace(key, id);
  return id;
}

NodeId Circuit::find_node(const std::string& name) const {
  if (is_ground_name(name)) return kGround;
  auto it = node_ids_.find(lower(name));
  if (it == node_ids_.end()) throw LookupError("no node named '" + name + "'");
  return it->second;
}

const std::string& Circuit::node_name(NodeId id) const {
  static const std::string kGroundName = "0";
  if (id == kGround) return kGroundName;
  return node_names_.at(static_cast<size_t>(id));
}

const MosModelCard* Circuit::add_model(MosModelCard card) {
  ensure_not_finalized();
  const std::string key = lower(card.name);
  auto [it, inserted] = models_.insert_or_assign(key, std::move(card));
  (void)inserted;
  return &it->second;
}

const MosModelCard* Circuit::model(const std::string& name) const {
  auto it = models_.find(lower(name));
  if (it == models_.end()) throw LookupError("no .model named '" + name + "'");
  return &it->second;
}

Device* Circuit::find(const std::string& name) {
  const std::string key = lower(name);
  for (auto& d : devices_) {
    if (lower(d->name()) == key) return d.get();
  }
  return nullptr;
}

const Device* Circuit::find(const std::string& name) const {
  return const_cast<Circuit*>(this)->find(name);
}

void Circuit::finalize() {
  if (finalized_) return;
  size_t next = node_names_.size();
  for (auto& d : devices_) d->claim_branches(next);
  // Split into the compiled kernel's stamp lists, preserving device order
  // within each class so stamping stays deterministic.
  linear_devices_.clear();
  nonlinear_devices_.clear();
  for (auto& d : devices_) {
    (d->is_nonlinear() ? nonlinear_devices_ : linear_devices_).push_back(d.get());
  }
  mna_dim_ = next;
  finalized_ = true;
}

}  // namespace ape::spice
