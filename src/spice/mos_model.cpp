#include "src/spice/mos_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/error.h"

namespace ape::spice {
namespace {

constexpr double kEps0 = 8.854187817e-12;   // vacuum permittivity [F/m]
constexpr double kEpsOx = 3.9 * kEps0;      // SiO2
constexpr double kEpsSi = 11.7 * kEps0;     // silicon

/// Body-effect threshold voltage at source-bulk reverse bias vsb (>= -phi),
/// in the NMOS-normalized frame: a PMOS card's (negative) VTO flips sign so
/// that normalized evaluation sees a positive enhancement threshold.
/// (Depletion NMOS with VTO < 0 keeps its sign.)
double threshold(const MosModelCard& m, double vsb) {
  const double phi = std::max(m.phi, 0.1);
  const double arg = std::max(phi + vsb, 1e-6);
  const double vto = m.type == MosType::Pmos ? -m.vto : m.vto;
  return vto + m.gamma * (std::sqrt(arg) - std::sqrt(phi));
}

/// Effective transconductance parameter at this bias (levels 2/3 reduce the
/// mobility with vertical field and velocity saturation; level 1 is constant).
double effective_kp(const MosModelCard& m, double vov, double vds, double leff) {
  double kp = m.kp;
  if (kp <= 0.0) kp = m.u0 * 1e-4 * m.cox();  // u0 is cm^2/Vs
  if (m.level == 2 && m.uexp > 0.0 && vov > 0.0) {
    // SPICE2 empirical vertical-field mobility degradation.
    const double ufact =
        std::pow(m.ucrit * 1e2 * kEpsSi / (m.cox() * vov), m.uexp);
    kp *= std::min(1.0, ufact);
  }
  if (m.level == 3) {
    if (m.theta > 0.0 && vov > 0.0) kp /= (1.0 + m.theta * vov);
    if (m.vmax > 0.0 && vds > 0.0) {
      const double u_eff = (kp / m.cox()) ;  // ueff*1 (m^2/Vs equivalent)
      kp /= (1.0 + u_eff * vds / (m.vmax * leff));
    }
  }
  return kp;
}

/// DIBL threshold shift (level 3 only).
double dibl_shift(const MosModelCard& m, double vds, double leff) {
  if (m.level != 3 || m.eta <= 0.0) return 0.0;
  const double sigma = m.eta * 8.15e-22 / (m.cox() * leff * leff * leff);
  return sigma * vds;
}

struct CoreEval {
  double ids, vth, vdsat;
  MosRegion region;
};

/// Simplified BSIM1 (LEVEL 4) forward current. NMOS-normalized frame:
/// a PMOS card's VFB flips sign like VTO does for the other levels.
CoreEval ids_forward_bsim(const MosModelCard& m, double vgs, double vds,
                          double vbs, double w, double l) {
  const double leff = std::max(m.leff(l), 1e-8);
  const double phi = std::max(m.phi, 0.1);
  const double sb = std::max(phi - vbs, 1e-6);  // PHI + Vsb
  const double vfb = m.type == MosType::Pmos ? -m.vfb : m.vfb;
  double vth = vfb + phi + m.k1 * std::sqrt(sb) - m.k2 * sb - m.eta * vds;

  const double vov = vgs - vth;
  CoreEval out{0.0, vth, std::max(vov, 0.0), MosRegion::Cutoff};
  if (vov <= 0.0) return out;

  const double a = 1.0 + m.k1 / (2.0 * std::sqrt(sb));
  double beta = m.muz * 1e-4 * m.cox() * w / leff;
  if (m.u0v > 0.0) beta /= (1.0 + m.u0v * vov);

  double vdsat = vov / a;
  if (m.u1 > 0.0) {
    const double vc = leff / m.u1;  // velocity-saturation voltage
    vdsat = vdsat * vc / (vdsat + vc);
  }
  out.vdsat = vdsat;

  double lambda = m.lambda;
  if (m.lref > 0.0) lambda *= m.lref / leff;
  const double clm = 1.0 + lambda * vds;
  if (vds < vdsat) {
    out.region = MosRegion::Triode;
    out.ids = beta * (vov * vds - 0.5 * a * vds * vds) * clm;
  } else {
    out.region = MosRegion::Saturation;
    out.ids = beta * (vov * vdsat - 0.5 * a * vdsat * vdsat) * clm;
  }
  return out;
}

/// Forward-mode (vds >= 0) drain current, NMOS-normalized.
CoreEval ids_forward(const MosModelCard& m, double vgs, double vds, double vbs,
                     double w, double l) {
  if (m.level == 4) return ids_forward_bsim(m, vgs, vds, vbs, w, l);
  const double leff = std::max(m.leff(l), 1e-8);
  const double vsb = -vbs;
  double vth = threshold(m, std::max(vsb, -m.phi + 1e-6));
  vth -= dibl_shift(m, vds, leff);

  const double vov = vgs - vth;
  CoreEval out{0.0, vth, std::max(vov, 0.0), MosRegion::Cutoff};
  if (vov <= 0.0) {
    // Subthreshold is modeled as off; a tiny conductance is added at the
    // stamping layer (gmin) for Newton robustness.
    return out;
  }
  const double kp = effective_kp(m, vov, vds, leff);
  const double beta = kp * w / leff;

  double vdsat = vov;
  if (m.vmax > 0.0) {
    // Velocity-saturation limited vdsat, smoothly interpolated.
    const double u_eff = kp / m.cox();
    const double vc = m.vmax * leff / std::max(u_eff, 1e-12);
    vdsat = vov * vc / (vov + vc);
  }
  out.vdsat = vdsat;

  double lambda = m.lambda;
  if (m.lref > 0.0) lambda *= m.lref / leff;  // Early voltage ~ Leff
  const double clm = 1.0 + lambda * vds;
  if (vds < vdsat) {
    out.region = MosRegion::Triode;
    out.ids = beta * (vov * vds - 0.5 * vds * vds) * clm;
  } else {
    out.region = MosRegion::Saturation;
    // Keep the current continuous at vds = vdsat.
    out.ids = beta * (vov * vdsat - 0.5 * vdsat * vdsat) * clm;
  }
  return out;
}

/// Drain current for any vds sign (source/drain swap symmetry).
CoreEval ids_any(const MosModelCard& m, double vgs, double vds, double vbs,
                 double w, double l) {
  if (vds >= 0.0) return ids_forward(m, vgs, vds, vbs, w, l);
  CoreEval e = ids_forward(m, vgs - vds, -vds, vbs - vds, w, l);
  e.ids = -e.ids;
  return e;
}

/// Reverse-biased junction capacitance (linear extension under forward bias).
double junction_cap(double c0_area, double mj, double c0_perim, double mjsw,
                    double pb, double vr) {
  // vr = reverse bias (>= 0 in normal operation).
  auto term = [&](double c0, double grading) {
    if (c0 <= 0.0) return 0.0;
    if (vr >= 0.0) return c0 / std::pow(1.0 + vr / pb, grading);
    // Forward bias: linearize at v = 0 to avoid the singularity at -pb.
    return c0 * (1.0 - grading * vr / pb);
  };
  return term(c0_area, mj) + term(c0_perim, mjsw);
}

}  // namespace

double MosModelCard::cox() const { return kEpsOx / std::max(tox, 1e-10); }

std::string to_card_string(const MosModelCard& m) {
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      ".model %s %s (level=%d vto=%.9g kp=%.9g gamma=%.9g phi=%.9g "
      "lambda=%.9g tox=%.9g ld=%.9g cgso=%.9g cgdo=%.9g cgbo=%.9g cj=%.9g "
      "mj=%.9g cjsw=%.9g mjsw=%.9g pb=%.9g theta=%.9g eta=%.9g vmax=%.9g "
      "uexp=%.9g ucrit=%.9g lref=%.9g vfb=%.9g k1=%.9g k2=%.9g muz=%.9g "
      "u0v=%.9g u1=%.9g)",
      m.name.c_str(), m.type == MosType::Nmos ? "nmos" : "pmos", m.level,
      m.vto, m.kp, m.gamma, m.phi, m.lambda, m.tox, m.ld, m.cgso, m.cgdo,
      m.cgbo, m.cj, m.mj, m.cjsw, m.mjsw, m.pb, m.theta, m.eta, m.vmax,
      m.uexp, m.ucrit, m.lref, m.vfb, m.k1, m.k2, m.muz, m.u0v, m.u1);
  return buf;
}

MosEval mos_eval(const MosModelCard& m, double vgs, double vds, double vbs,
                 double w, double l, double ad, double as, double pd,
                 double ps) {
  if (w <= 0.0 || l <= 0.0) throw NumericError("mos_eval: non-positive W or L");
  MosEval r;
  const CoreEval core = ids_any(m, vgs, vds, vbs, w, l);
  r.ids = core.ids;
  r.vth = core.vth;
  r.vdsat = core.vdsat;
  r.region = core.region;

  // Derivatives by central finite differences of the (continuous) current
  // function. This keeps all three model levels and both vds signs on one
  // consistent code path, which matters for Newton convergence.
  const double h = 1e-6;
  r.gm = (ids_any(m, vgs + h, vds, vbs, w, l).ids -
          ids_any(m, vgs - h, vds, vbs, w, l).ids) /
         (2.0 * h);
  r.gds = (ids_any(m, vgs, vds + h, vbs, w, l).ids -
           ids_any(m, vgs, vds - h, vbs, w, l).ids) /
          (2.0 * h);
  r.gmb = (ids_any(m, vgs, vds, vbs + h, w, l).ids -
           ids_any(m, vgs, vds, vbs - h, w, l).ids) /
          (2.0 * h);

  // Meyer gate capacitances, piecewise by region (forward orientation).
  const double leff = std::max(m.leff(l), 1e-8);
  const double cox_tot = m.cox() * w * leff;
  const double c_ov_s = m.cgso * w;
  const double c_ov_d = m.cgdo * w;
  const double c_ov_b = m.cgbo * l;
  switch (r.region) {
    case MosRegion::Cutoff:
      r.cgb = cox_tot + c_ov_b;
      r.cgs = c_ov_s;
      r.cgd = c_ov_d;
      break;
    case MosRegion::Triode:
      r.cgs = 0.5 * cox_tot + c_ov_s;
      r.cgd = 0.5 * cox_tot + c_ov_d;
      r.cgb = c_ov_b;
      break;
    case MosRegion::Saturation:
      r.cgs = (2.0 / 3.0) * cox_tot + c_ov_s;
      r.cgd = c_ov_d;
      r.cgb = c_ov_b;
      break;
  }

  // Junction capacitances: reverse bias of drain-bulk is vdb = vds - vbs,
  // of source-bulk is vsb = -vbs (NMOS-normalized voltages).
  r.cdb = junction_cap(m.cj * ad, m.mj, m.cjsw * pd, m.mjsw, m.pb, vds - vbs);
  r.csb = junction_cap(m.cj * as, m.mj, m.cjsw * ps, m.mjsw, m.pb, -vbs);
  return r;
}

MosEval mos_eval_signed(const MosModelCard& m, double vgs, double vds,
                        double vbs, double w, double l, double ad, double as,
                        double pd, double ps) {
  if (m.type == MosType::Nmos) {
    return mos_eval(m, vgs, vds, vbs, w, l, ad, as, pd, ps);
  }
  MosEval r = mos_eval(m, -vgs, -vds, -vbs, w, l, ad, as, pd, ps);
  r.ids = -r.ids;  // current into the drain terminal is negative when conducting
  r.vth = -r.vth;
  return r;
}

}  // namespace ape::spice
