#pragma once
/// \file analysis.h
/// DC operating point, AC small-signal sweep and transient analysis.

#include <complex>
#include <functional>
#include <vector>

#include "src/spice/circuit.h"
#include "src/util/diagnostics.h"

namespace ape::spice {

/// Knobs for the Newton-Raphson DC solve.
struct DcOptions {
  int max_iterations = 300;
  double reltol = 1e-4;
  double vntol = 1e-6;     ///< absolute node-voltage tolerance [V]
  double abstol = 1e-9;    ///< absolute branch-current tolerance [A]
  double vstep_limit = 0.6;///< max per-iteration node update [V] (damping)
  /// Cap on the damping divisor: each Newton step always closes at least
  /// 1/max_damping_ratio of the remaining distance (keeps convergence
  /// geometric for circuits with large legitimate internal swings).
  double max_damping_ratio = 10.0;
  /// gmin stepping ladder (diagonal conductance to ground on node rows).
  /// Dense by default: each rung starts warm from the previous solution,
  /// so extra rungs cost little and buy robustness on high-gain circuits.
  std::vector<double> gmin_steps{1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7,
                                 1e-8, 1e-9, 1e-10, 1e-11, 1e-12};
  /// Source-stepping ladder tried if plain gmin stepping fails.
  std::vector<double> source_steps{0.1, 0.25, 0.5, 0.75, 0.9, 1.0};
  /// When set, filled with which recovery plan converged and the solve's
  /// iteration / failure counters (reset at the start of each call).
  ConvergenceReport* report = nullptr;
  /// Cooperative deadline: checked between ladder rungs; an exhausted
  /// budget aborts the solve with a NumericError (never mid-iteration).
  /// The thread's ambient job budget (ScopedJobBudget) is polled at the
  /// same sites, so a supervisor deadline needs no options plumbing.
  const RunBudget* budget = nullptr;
  /// Invoked on the finalized circuit before the first Newton iteration;
  /// throwing from the hook aborts the solve. The lint layer plugs its
  /// structural-solvability gate in here (lint::preflight(), DESIGN.md
  /// section 9) so singular topologies fail fast with a named rule
  /// instead of burning the whole gmin / source-stepping ladder.
  std::function<void(const Circuit&)> preflight;
};

/// Solve the DC operating point. On success every device has its
/// operating point cached (Device::save_op) so AC / transient analyses
/// can follow. Throws NumericError if Newton fails to converge; the
/// message carries the ErrorContext provenance chain and the
/// ConvergenceReport summary of how far the recovery ladder got.
Solution dc_operating_point(Circuit& ckt, const DcOptions& opts = {});

/// Node voltage by name from a solution.
double node_voltage(const Circuit& ckt, const Solution& sol, const std::string& node);

/// Current through a named voltage source (positive current flows into
/// the + terminal through the source, SPICE convention).
double source_current(Circuit& ckt, const Solution& sol, const std::string& vsource);

/// DC transfer sweep: steps a named source's DC value and re-solves the
/// operating point, warm-starting each point from the previous solution.
struct DcSweepResult {
  std::vector<double> values;      ///< swept source values
  std::vector<Solution> solutions; ///< converged operating points

  double voltage(NodeId node, size_t k) const { return solutions.at(k).at(node); }
};

/// Sweep \p vsource from \p start to \p stop (inclusive) in steps of
/// \p step. Devices keep the op cache of the LAST point. A mid-sweep
/// convergence failure throws a NumericError naming the failing sweep
/// value; the swept source's DC value is restored first.
DcSweepResult dc_sweep(Circuit& ckt, const std::string& vsource, double start,
                       double stop, double step, const DcOptions& opts = {});

// ---------------------------------------------------------------------------

/// One AC sweep: complex node voltages at each frequency point.
struct AcResult {
  std::vector<double> freq_hz;
  /// solutions[k] is the complex MNA solution at freq_hz[k].
  std::vector<std::vector<std::complex<double>>> solutions;

  /// Complex voltage of a node at sweep index k.
  std::complex<double> voltage(NodeId node, size_t k) const {
    if (node == kGround) return {0.0, 0.0};
    return solutions.at(k).at(static_cast<size_t>(node));
  }
};

/// Logarithmic AC sweep. Requires a previous dc_operating_point() so the
/// devices have cached small-signal parameters. When \p kstats is set it
/// receives the compiled AC kernel's counters for the sweep (fused vs
/// virtual points, factorizations, workspace footprint). Polls the
/// thread's ambient job budget per point (there is no per-call budget
/// knob) so supervisor deadlines reach frequency sweeps too.
AcResult ac_analysis(Circuit& ckt, double f_start, double f_stop,
                     int points_per_decade = 20, KernelStats* kstats = nullptr);

// ---------------------------------------------------------------------------

/// Transient analysis result: node voltages over time.
struct TranResult {
  std::vector<double> time_s;
  std::vector<Solution> solutions;

  double voltage(NodeId node, size_t k) const { return solutions.at(k).at(node); }
};

struct TranOptions {
  int max_iterations = 100;
  double reltol = 1e-4;
  double vntol = 1e-6;
  int max_step_halvings = 8;  ///< local dt refinement on Newton failure
  /// When set, filled with step-halving / failure counters for the run.
  ConvergenceReport* report = nullptr;
  /// Cooperative deadline: checked between time steps; an exhausted
  /// budget aborts with a NumericError naming the time reached. The
  /// ambient job budget (ScopedJobBudget) is polled at the same sites.
  const RunBudget* budget = nullptr;
};

/// Fixed-step transient from the DC operating point at t = 0.
/// Runs dc_operating_point() internally to establish initial conditions.
/// The output grid is exactly the user grid (0, t_step, 2*t_step, ...,
/// t_stop) even when Newton failures force internal sub-stepping;
/// sub-step solutions are used for integration but never recorded.
TranResult transient(Circuit& ckt, double t_step, double t_stop,
                     const TranOptions& opts = {});

}  // namespace ape::spice
