#pragma once
/// \file kernel.h
/// Compiled-stamp MNA kernel: allocation-free solver workspaces and
/// linear-baseline reuse for the DC / transient Newton loops, plus fused
/// G + jwC assembly for AC sweeps.
///
/// The analyses in analysis.cpp used to restamp *every* device through
/// virtual dispatch on every Newton iteration, heap-allocate a fresh
/// LuSolver and solution vector per solve, and rebuild the full complex
/// MNA per AC frequency point. This layer compiles a finalized Circuit
/// into flat stamp programs instead:
///
/// - SolveWorkspace (real systems, DC + transient): stamps the linear
///   devices (Circuit::linear_devices()) plus the gmin diagonal once into
///   a baseline (G0, RHS0), then each Newton iteration memcpy-restores
///   the baseline and restamps only the nonlinear devices
///   (Circuit::nonlinear_devices(): MOSFETs, diodes). The MNA matrix,
///   RHS, LU storage, pivot array and solution buffer are all owned by
///   the workspace, so a whole analysis performs zero heap allocations
///   after setup (KernelStats::workspace_regrowths stays 0).
/// - AcKernel (complex systems): assembles real G and C matrices once per
///   operating point from one virtual stamp pass, then forms G + jwC per
///   frequency with a fused loop over the flat storage. The split is
///   validated at compile time against a second stamp pass (every
///   shipped device is affine in w: A(w) = G + jwC); if a future device
///   ever breaks that contract the kernel falls back to per-point
///   virtual stamping and counts it in KernelStats::ac_points_virtual.
///
/// Both workspaces carry the numerical-health layer (DESIGN.md section
/// 15): every factorization tracks its pivot extremes (an O(1) growth /
/// condition monitor), and when the ambient NumericHealthMode says so —
/// or the monitors trip — the solve runs Hager's condition estimate,
/// fixed-precision iterative refinement, and a recovery ladder (refine ->
/// equilibrate-and-refactorize -> switch kernel -> the gmin ladder above)
/// before giving up. The per-solve outcome is exposed through health()
/// and aggregated into KernelStats.
///
/// Both workspaces additionally carry a *sparse* factorization path
/// (src/util/sparse.h, DESIGN.md section 13): the stamp recorder on
/// MnaReal/MnaComplex captures the structural slot pattern once per
/// topology, a Markowitz symbolic factorization is done once and then
/// *reused* — each Newton iteration / AC point only gathers slot values
/// and replays the compiled elimination program. A crossover heuristic
/// (KernelPolicy) keeps tiny systems on the dense path, where flat
/// O(n^3) loops still win; a sparse refactor whose pivots collapse
/// (stale ordering) falls back to the dense solver for that solve and
/// counts KernelStats::sparse_fallbacks.
///
/// Ownership / thread-safety: a workspace borrows the Circuit it was
/// compiled from and is valid for one analysis call on one thread; it
/// holds no state that outlives the call. Under the batch runtime each
/// runtime::Executor job runs its analyses on its own Circuit and
/// therefore owns its own workspaces — workspaces are never shared or
/// cached across jobs (see the THREAD-SAFETY RULE in
/// src/util/diagnostics.h and DESIGN.md section 8).

#include <complex>
#include <vector>

#include "src/spice/circuit.h"
#include "src/util/diagnostics.h"
#include "src/util/matrix.h"
#include "src/util/sparse.h"

namespace ape::spice {

// ---------------------------------------------------------------------------
// Dense / sparse path selection.

/// Which factorization path a solver workspace uses.
enum class KernelPath {
  Auto,        ///< crossover heuristic: sparse for large, sparse systems
  ForceDense,  ///< always the dense LuSolver (the pre-sparse behaviour)
  ForceSparse, ///< always the sparse path (equivalence tests)
};

/// Crossover policy for KernelPath::Auto. Dense LU wins at tiny n — the
/// flat O(n^3) loops beat the sparse machinery's indirection until the
/// system is both big enough and sparse enough; the defaults keep every
/// opamp estimate testbench (dim ~15-30) on the proven dense path and
/// were chosen from the bench_spice_kernel crossover table
/// (BENCH_spice_kernel.json).
struct KernelPolicy {
  KernelPath path = KernelPath::Auto;
  size_t sparse_min_dim = 48;        ///< Auto: dense below this dimension
  double sparse_max_density = 0.35;  ///< Auto: dense above this pattern density

  /// The Auto decision for a frozen pattern of \p dim / \p density.
  bool wants_sparse(size_t dim, double density) const {
    switch (path) {
      case KernelPath::ForceDense: return false;
      case KernelPath::ForceSparse: return true;
      case KernelPath::Auto: break;
    }
    return dim >= sparse_min_dim && density <= sparse_max_density;
  }
};

/// The policy in effect on this thread (the ambient override installed
/// by ScopedKernelPolicy, or the defaults).
const KernelPolicy& kernel_policy();

/// RAII installation of a KernelPolicy on the current thread (same
/// discipline as ScopedJobBudget: nesting replaces, exit restores, the
/// policy is not owned). Workspaces snapshot the policy when they freeze
/// their pattern, so install it before the analysis call.
class ScopedKernelPolicy {
public:
  explicit ScopedKernelPolicy(const KernelPolicy& policy);
  ~ScopedKernelPolicy();

  ScopedKernelPolicy(const ScopedKernelPolicy&) = delete;
  ScopedKernelPolicy& operator=(const ScopedKernelPolicy&) = delete;

private:
  const KernelPolicy* previous_;
};

/// Reusable real-MNA solve workspace with a compiled linear baseline.
///
/// Usage per Newton ladder rung (DC) or per transient step attempt:
///   ws.build_dc_baseline(gmin, src_scale);       // linear stamps, once
///   for each Newton iteration:
///     ws.assemble_dc(x, src_scale);              // restore + nonlinear
///     ... fault probes on ws.mna() ...
///     const auto& xnew = ws.solve();             // in-place LU
class SolveWorkspace {
public:
  /// Compile against a finalized circuit (finalizes it if needed).
  explicit SolveWorkspace(Circuit& ckt);

  /// Stamp the linear baseline for DC Newton at (gmin, src_scale):
  /// linear device stamps plus \p gmin on every node-row diagonal.
  void build_dc_baseline(double gmin, double src_scale);

  /// Stamp the linear baseline for one transient solve attempt at \p tc
  /// (fixed dt / time / integrator state) plus the floating-node gmin
  /// diagonal. Valid until the step is accepted or dt changes.
  void build_tran_baseline(const TranContext& tc);

  /// Restore the baseline (memcpy) and restamp the nonlinear devices
  /// linearized around candidate \p x for a DC iteration.
  void assemble_dc(const Solution& x, double src_scale);

  /// Restore the baseline and restamp the nonlinear devices for a
  /// transient iteration at candidate \p x.
  void assemble_tran(const Solution& x, const TranContext& tc);

  /// Factorize the assembled system in place and solve into the owned
  /// solution buffer (returned by reference, valid until the next call).
  /// Throws NumericError on a singular system.
  const std::vector<double>& solve();

  /// The assembled system (for fault-injection probes). Always fully
  /// assembled dense, even on the sparse path: the sparse solve gathers
  /// its slot values *from* this matrix, so a probe poking any pattern
  /// slot (the (0, 0) gmin diagonal included) reaches both paths.
  MnaReal& mna() { return mna_; }

  /// True once the pattern froze onto the sparse factorization path
  /// (after the first solve; see the symbolic-reuse lifecycle in
  /// DESIGN.md section 13).
  bool sparse_path() const { return use_sparse_; }

  /// Numerical health of the last solve() (reset per solve; zero-valued
  /// gauges mean the corresponding check did not run).
  const NumericHealth& health() const { return health_; }

  /// Counters accumulated since construction; callers snapshot this into
  /// ConvergenceReport::kernel. Reading refreshes the allocation audit
  /// (workspace_bytes / workspace_regrowths).
  const KernelStats& stats();

  /// Flushes stats() into the thread's ambient kernel-stats sink, if one
  /// is installed (ScopedKernelStatsSink) — how the batch runtime sees
  /// kernel work from jobs that never expose a ConvergenceReport.
  ~SolveWorkspace();

private:
  /// The gmin diagonal every transient / AC system gets so capacitively
  /// floating nodes stay solvable (hoisted constant; previously repeated
  /// inline at each assembly site).
  static constexpr double kFloatingNodeGmin = 1e-12;

  /// Which baseline family the frozen pattern was captured under. DC and
  /// transient baselines stamp different structural slots (capacitors
  /// are open at DC), so switching families reopens the capture.
  enum class BaselineKind { None, Dc, Tran };

  void restore_baseline();
  void begin_capture();
  void freeze_pattern();
  void note_baseline_kind(BaselineKind kind);
  void sync_sparse_stats();
  size_t measured_bytes() const;

  // Numerical-health helpers (DESIGN.md section 15).
  bool try_equilibrate_sparse();
  bool try_equilibrate_dense();
  void factor_dense();
  void run_health_checks(bool sparse, NumericHealthMode mode);
  void refine_current(bool sparse);
  void record_health();

  Circuit* ckt_;
  size_t dim_;
  size_t n_nodes_;
  MnaReal mna_;                    ///< assembled system
  MnaReal base_;                   ///< compiled linear baseline (G0, RHS0)
  LuSolver<double> lu_;            ///< dense factorization (and sparse rescue)
  std::vector<double> xnew_;       ///< solution buffer
  Solution zero_x_;                ///< dummy operating point for linear stamps
  KernelStats stats_;
  size_t setup_bytes_ = 0;         ///< workspace footprint right after setup

  // Sparse path (DESIGN.md section 13): pattern captured by the stamp
  // recorder until the first solve, then frozen; per-solve the values are
  // gathered from the dense mna_ storage through flat_idx_ and handed to
  // the reusable-symbolic sparse LU.
  SparsePattern pattern_;
  SparseLuReal slu_;
  std::vector<double> svals_;      ///< gathered slot values (CSR order)
  std::vector<size_t> flat_idx_;   ///< slot -> dense row-major index
  BaselineKind baseline_kind_ = BaselineKind::None;
  bool frozen_ = false;
  bool use_sparse_ = false;
  bool sparse_bytes_settled_ = false;  ///< setup_bytes_ recomputed post-freeze

  // Numerical-health state. The scratch vectors are preallocated at
  // construction (and folded into the audited setup bytes) so even the
  // recovery rungs run without growing the workspace.
  NumericHealth health_;
  std::vector<double> row_scale_;  ///< power-of-two row equilibration
  std::vector<double> col_scale_;  ///< power-of-two column equilibration
  std::vector<double> col_sums_;   ///< 1-norm scratch
  std::vector<double> hresid_;     ///< refinement residual
  std::vector<double> hdx_;        ///< refinement correction
  std::vector<double> hbest_;      ///< refinement best-iterate rollback
  std::vector<double> hwork_;      ///< scaled-RHS / out-of-place-solve scratch
  std::vector<double> hwork2_;     ///< condition-estimator probe vector
  bool equilibrated_now_ = false;  ///< current factorization is of RAC
};

// ---------------------------------------------------------------------------

/// Compiled complex-MNA kernel for AC sweeps: A(w) = G + jwC formed per
/// frequency with a fused loop over flat real G / C arrays compiled once
/// per operating point.
class AcKernel {
public:
  /// Compile G, C and the (w-independent) stimulus from the circuit's
  /// small-signal stamps at the cached operating point. Requires a
  /// finalized circuit (a prior dc_operating_point()).
  explicit AcKernel(Circuit& ckt);

  /// Assemble A(omega) into the owned complex system. Uses the fused
  /// G + jwC path when the compile-time split validated, else falls back
  /// to per-device virtual stamping.
  void assemble(double omega);

  /// Factorize the assembled system in place and solve into \p out
  /// (resized to dim(); allocation-free when already that size).
  /// Throws NumericError on a singular system.
  void solve_into(std::vector<std::complex<double>>& out);

  /// The assembled system (for reuse of the factorization, e.g. the
  /// noise analysis solving many right-hand sides per frequency).
  MnaComplex& mna() { return mna_; }

  /// Solve against an explicit RHS using the factorization of the last
  /// solve_into()/factorize() call. \p rhs and \p out must not alias.
  void solve_rhs(const std::vector<std::complex<double>>& rhs,
                 std::vector<std::complex<double>>& out);

  /// Factorize the currently assembled system without solving.
  void factorize();

  size_t dim() const { return dim_; }

  /// False when a device's stamps were not affine in w and the kernel
  /// reverted to per-point virtual stamping.
  bool exact_split() const { return exact_split_; }

  /// True when the kernel factorizes through the sparse path (requires
  /// an exact split; decided once at construction from kernel_policy()).
  bool sparse_path() const { return use_sparse_; }

  /// Numerical health of the last factorize() (covers every solve made
  /// against that factorization, including noise-analysis solve_rhs()).
  const NumericHealth& health() const { return health_; }

  const KernelStats& stats();

  /// Flushes stats() into the thread's ambient kernel-stats sink, if any.
  ~AcKernel();

private:
  static constexpr double kFloatingNodeGmin = 1e-12;

  void stamp_virtual(double omega);
  void assemble_dense(double omega);
  size_t measured_bytes() const;

  // Numerical-health helpers (DESIGN.md section 15). Refinement state is
  // per-factorization: factorize() decides whether subsequent solves
  // need refining, so the noise analysis' many solve_rhs() calls against
  // one factorization are all refined consistently.
  bool try_equilibrate_sparse();
  bool try_equilibrate_dense();
  void factor_dense();
  void post_factor_health(NumericHealthMode mode);
  void solve_current(const std::vector<std::complex<double>>& rhs,
                     std::vector<std::complex<double>>& out);
  void refine_in_place(const std::vector<std::complex<double>>& rhs,
                       std::vector<std::complex<double>>& x);
  void matvec_current(const std::vector<std::complex<double>>& v,
                      std::vector<std::complex<double>>& y) const;

  Circuit* ckt_;
  size_t dim_;
  std::vector<double> g_;          ///< flat row-major Re part (w-independent)
  std::vector<double> c_;          ///< flat row-major dA/d(jw)
  std::vector<std::complex<double>> rhs0_;  ///< w-independent stimulus
  MnaComplex mna_;
  LuSolver<std::complex<double>> lu_;
  bool exact_split_ = true;
  KernelStats stats_;
  size_t setup_bytes_ = 0;

  // Sparse sweep path: SoA per-slot G / C arrays (structure-of-arrays,
  // so the per-point assembly a[s] = gs[s] + jw*cs[s] is one contiguous
  // vectorizable loop of O(nnz) instead of the O(n^2) dense fill).
  SparsePattern pattern_;
  SparseLuComplex slu_;
  std::vector<double> gs_;         ///< per-slot Re part (pattern order)
  std::vector<double> cs_;         ///< per-slot dA/d(jw) (pattern order)
  std::vector<std::complex<double>> avals_;  ///< assembled slot values
  bool use_sparse_ = false;
  bool sparse_live_ = false;       ///< last factorization was sparse
  bool sparse_bytes_settled_ = false;  ///< setup_bytes_ recomputed after the
                                       ///< first symbolic factorization
  double last_omega_ = 0.0;        ///< for the dense rescue re-assembly

  // Numerical-health state (preallocated, see SolveWorkspace).
  NumericHealth health_;
  std::vector<double> row_scale_;
  std::vector<double> col_scale_;
  std::vector<double> col_sums_;
  std::vector<std::complex<double>> cresid_;
  std::vector<std::complex<double>> cdx_;
  std::vector<std::complex<double>> cbest_;
  std::vector<std::complex<double>> cwork_;
  std::vector<std::complex<double>> cwork2_;
  bool equilibrated_now_ = false;  ///< current factorization is of RAC
  bool refine_active_ = false;     ///< refine every solve of this factorization
  double anorm_inf_ = 0.0;         ///< inf-norm of the assembled A(omega)
};

}  // namespace ape::spice
