#pragma once
/// \file kernel.h
/// Compiled-stamp MNA kernel: allocation-free solver workspaces and
/// linear-baseline reuse for the DC / transient Newton loops, plus fused
/// G + jwC assembly for AC sweeps.
///
/// The analyses in analysis.cpp used to restamp *every* device through
/// virtual dispatch on every Newton iteration, heap-allocate a fresh
/// LuSolver and solution vector per solve, and rebuild the full complex
/// MNA per AC frequency point. This layer compiles a finalized Circuit
/// into flat stamp programs instead:
///
/// - SolveWorkspace (real systems, DC + transient): stamps the linear
///   devices (Circuit::linear_devices()) plus the gmin diagonal once into
///   a baseline (G0, RHS0), then each Newton iteration memcpy-restores
///   the baseline and restamps only the nonlinear devices
///   (Circuit::nonlinear_devices(): MOSFETs, diodes). The MNA matrix,
///   RHS, LU storage, pivot array and solution buffer are all owned by
///   the workspace, so a whole analysis performs zero heap allocations
///   after setup (KernelStats::workspace_regrowths stays 0).
/// - AcKernel (complex systems): assembles real G and C matrices once per
///   operating point from one virtual stamp pass, then forms G + jwC per
///   frequency with a fused loop over the flat storage. The split is
///   validated at compile time against a second stamp pass (every
///   shipped device is affine in w: A(w) = G + jwC); if a future device
///   ever breaks that contract the kernel falls back to per-point
///   virtual stamping and counts it in KernelStats::ac_points_virtual.
///
/// Ownership / thread-safety: a workspace borrows the Circuit it was
/// compiled from and is valid for one analysis call on one thread; it
/// holds no state that outlives the call. Under the batch runtime each
/// runtime::Executor job runs its analyses on its own Circuit and
/// therefore owns its own workspaces — workspaces are never shared or
/// cached across jobs (see the THREAD-SAFETY RULE in
/// src/util/diagnostics.h and DESIGN.md section 8).

#include <complex>
#include <vector>

#include "src/spice/circuit.h"
#include "src/util/diagnostics.h"
#include "src/util/matrix.h"

namespace ape::spice {

/// Reusable real-MNA solve workspace with a compiled linear baseline.
///
/// Usage per Newton ladder rung (DC) or per transient step attempt:
///   ws.build_dc_baseline(gmin, src_scale);       // linear stamps, once
///   for each Newton iteration:
///     ws.assemble_dc(x, src_scale);              // restore + nonlinear
///     ... fault probes on ws.mna() ...
///     const auto& xnew = ws.solve();             // in-place LU
class SolveWorkspace {
public:
  /// Compile against a finalized circuit (finalizes it if needed).
  explicit SolveWorkspace(Circuit& ckt);

  /// Stamp the linear baseline for DC Newton at (gmin, src_scale):
  /// linear device stamps plus \p gmin on every node-row diagonal.
  void build_dc_baseline(double gmin, double src_scale);

  /// Stamp the linear baseline for one transient solve attempt at \p tc
  /// (fixed dt / time / integrator state) plus the floating-node gmin
  /// diagonal. Valid until the step is accepted or dt changes.
  void build_tran_baseline(const TranContext& tc);

  /// Restore the baseline (memcpy) and restamp the nonlinear devices
  /// linearized around candidate \p x for a DC iteration.
  void assemble_dc(const Solution& x, double src_scale);

  /// Restore the baseline and restamp the nonlinear devices for a
  /// transient iteration at candidate \p x.
  void assemble_tran(const Solution& x, const TranContext& tc);

  /// Factorize the assembled system in place and solve into the owned
  /// solution buffer (returned by reference, valid until the next call).
  /// Throws NumericError on a singular system.
  const std::vector<double>& solve();

  /// The assembled system (for fault-injection probes).
  MnaReal& mna() { return mna_; }

  /// Counters accumulated since construction; callers snapshot this into
  /// ConvergenceReport::kernel. Reading refreshes the allocation audit
  /// (workspace_bytes / workspace_regrowths).
  const KernelStats& stats();

private:
  /// The gmin diagonal every transient / AC system gets so capacitively
  /// floating nodes stay solvable (hoisted constant; previously repeated
  /// inline at each assembly site).
  static constexpr double kFloatingNodeGmin = 1e-12;

  void restore_baseline();
  size_t measured_bytes() const;

  Circuit* ckt_;
  size_t dim_;
  size_t n_nodes_;
  MnaReal mna_;                    ///< assembled system
  MnaReal base_;                   ///< compiled linear baseline (G0, RHS0)
  LuSolver<double> lu_;            ///< in-place factorization storage
  std::vector<double> xnew_;       ///< solution buffer
  Solution zero_x_;                ///< dummy operating point for linear stamps
  KernelStats stats_;
  size_t setup_bytes_ = 0;         ///< workspace footprint right after setup
};

// ---------------------------------------------------------------------------

/// Compiled complex-MNA kernel for AC sweeps: A(w) = G + jwC formed per
/// frequency with a fused loop over flat real G / C arrays compiled once
/// per operating point.
class AcKernel {
public:
  /// Compile G, C and the (w-independent) stimulus from the circuit's
  /// small-signal stamps at the cached operating point. Requires a
  /// finalized circuit (a prior dc_operating_point()).
  explicit AcKernel(Circuit& ckt);

  /// Assemble A(omega) into the owned complex system. Uses the fused
  /// G + jwC path when the compile-time split validated, else falls back
  /// to per-device virtual stamping.
  void assemble(double omega);

  /// Factorize the assembled system in place and solve into \p out
  /// (resized to dim(); allocation-free when already that size).
  /// Throws NumericError on a singular system.
  void solve_into(std::vector<std::complex<double>>& out);

  /// The assembled system (for reuse of the factorization, e.g. the
  /// noise analysis solving many right-hand sides per frequency).
  MnaComplex& mna() { return mna_; }

  /// Solve against an explicit RHS using the factorization of the last
  /// solve_into()/factorize() call. \p rhs and \p out must not alias.
  void solve_rhs(const std::vector<std::complex<double>>& rhs,
                 std::vector<std::complex<double>>& out);

  /// Factorize the currently assembled system without solving.
  void factorize();

  size_t dim() const { return dim_; }

  /// False when a device's stamps were not affine in w and the kernel
  /// reverted to per-point virtual stamping.
  bool exact_split() const { return exact_split_; }

  const KernelStats& stats();

private:
  static constexpr double kFloatingNodeGmin = 1e-12;

  void stamp_virtual(double omega);
  size_t measured_bytes() const;

  Circuit* ckt_;
  size_t dim_;
  std::vector<double> g_;          ///< flat row-major Re part (w-independent)
  std::vector<double> c_;          ///< flat row-major dA/d(jw)
  std::vector<std::complex<double>> rhs0_;  ///< w-independent stimulus
  MnaComplex mna_;
  LuSolver<std::complex<double>> lu_;
  bool exact_split_ = true;
  KernelStats stats_;
  size_t setup_bytes_ = 0;
};

}  // namespace ape::spice
