#pragma once
/// \file noise.h
/// Small-signal noise analysis: sums every device's equivalent noise
/// current source, each shaped by its own transfer function to the probe
/// node, into an output noise spectral density.
///
/// Method: at each frequency the complex MNA matrix is factorized once;
/// then for every noise source a unit current is injected across its
/// terminals and the resulting |V(out)|^2 weights that source's PSD.
/// Requires dc_operating_point() first (device op caches).

#include <string>
#include <vector>

#include "src/spice/circuit.h"
#include "src/util/diagnostics.h"

namespace ape::spice {

struct NoiseResult {
  std::vector<double> freq_hz;
  std::vector<double> out_v2;  ///< output noise PSD [V^2/Hz]
  std::vector<double> in_v2;   ///< input-referred PSD [V^2/Hz] (0 if no gain ref)

  /// RMS output noise integrated over [f1, f2] by trapezoid on the
  /// sampled grid [V].
  double integrated_out_vrms(double f1, double f2) const;
};

/// Sweep output noise at \p out_node over a log grid.
/// If \p in_source names a voltage source carrying AC 1, the input-
/// referred density out_v2/|H|^2 is filled as well.
/// When \p kstats is non-null the sweep's kernel counters (fused points,
/// factorizations, multi-RHS solves, sparse symbolic reuse) are copied
/// out, same contract as ac_analysis.
NoiseResult noise_analysis(Circuit& ckt, const std::string& out_node,
                           double f_start, double f_stop,
                           int points_per_decade = 10,
                           const std::string& in_source = "",
                           KernelStats* kstats = nullptr);

}  // namespace ape::spice
