#include "src/spice/measure.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace ape::spice {

Bode::Bode(const AcResult& ac, NodeId out) {
  if (ac.freq_hz.empty()) throw NumericError("Bode: empty AC result");
  freq_ = ac.freq_hz;
  mag_.reserve(freq_.size());
  phase_deg_.reserve(freq_.size());
  for (size_t k = 0; k < freq_.size(); ++k) {
    const std::complex<double> h = ac.voltage(out, k);
    mag_.push_back(std::abs(h));
    phase_deg_.push_back(std::arg(h) * 180.0 / M_PI);
  }
}

double Bode::mag_at(double f) const {
  if (f <= freq_.front()) return mag_.front();
  if (f >= freq_.back()) return mag_.back();
  auto it = std::lower_bound(freq_.begin(), freq_.end(), f);
  const size_t hi = static_cast<size_t>(it - freq_.begin());
  const size_t lo = hi - 1;
  const double t = (std::log10(f) - std::log10(freq_[lo])) /
                   (std::log10(freq_[hi]) - std::log10(freq_[lo]));
  const double lm =
      std::log10(std::max(mag_[lo], 1e-30)) * (1.0 - t) +
      std::log10(std::max(mag_[hi], 1e-30)) * t;
  return std::pow(10.0, lm);
}

std::optional<double> Bode::crossing(double level, size_t from) const {
  for (size_t k = std::max<size_t>(from, 1); k < freq_.size(); ++k) {
    if (mag_[k - 1] >= level && mag_[k] < level) {
      // Log-log interpolation of the crossing frequency.
      const double l0 = std::log10(std::max(mag_[k - 1], 1e-30));
      const double l1 = std::log10(std::max(mag_[k], 1e-30));
      const double lt = std::log10(std::max(level, 1e-30));
      const double t = (l0 - lt) / std::max(l0 - l1, 1e-12);
      const double lf = std::log10(freq_[k - 1]) * (1.0 - t) + std::log10(freq_[k]) * t;
      return std::pow(10.0, lf);
    }
  }
  return std::nullopt;
}

std::optional<double> Bode::unity_gain_freq() const { return crossing(1.0, 1); }

std::optional<double> Bode::f_3db() const {
  return crossing(dc_gain() / std::sqrt(2.0), 1);
}

std::optional<double> Bode::mag_crossing(double level) const {
  return crossing(level, 1);
}

std::optional<double> Bode::phase_margin_deg() const {
  const auto fu = unity_gain_freq();
  if (!fu) return std::nullopt;
  // Interpolate phase at fu (linear in log-f).
  auto it = std::lower_bound(freq_.begin(), freq_.end(), *fu);
  size_t hi = static_cast<size_t>(it - freq_.begin());
  if (hi == 0) hi = 1;
  if (hi >= freq_.size()) hi = freq_.size() - 1;
  const size_t lo = hi - 1;
  const double t = (std::log10(*fu) - std::log10(freq_[lo])) /
                   std::max(std::log10(freq_[hi]) - std::log10(freq_[lo]), 1e-12);
  double p0 = phase_deg_[lo];
  double p1 = phase_deg_[hi];
  // Unwrap a single 360-degree jump between adjacent points.
  if (p1 - p0 > 180.0) p1 -= 360.0;
  if (p0 - p1 > 180.0) p1 += 360.0;
  const double phase = p0 * (1.0 - t) + p1 * t;
  return 180.0 + phase;  // relative to -180 degrees
}

double Bode::peak_freq() const {
  const size_t k = static_cast<size_t>(
      std::max_element(mag_.begin(), mag_.end()) - mag_.begin());
  return freq_[k];
}

double Bode::peak_gain() const {
  return *std::max_element(mag_.begin(), mag_.end());
}

std::optional<double> Bode::bandwidth_3db() const {
  const size_t kp = static_cast<size_t>(
      std::max_element(mag_.begin(), mag_.end()) - mag_.begin());
  const double level = mag_[kp] / std::sqrt(2.0);
  // Upper edge: first downward crossing after the peak.
  const auto hi = crossing(level, kp + 1);
  // Lower edge: first upward crossing before the peak (scan mirrored).
  std::optional<double> lo;
  for (size_t k = kp; k >= 1; --k) {
    if (mag_[k] >= level && mag_[k - 1] < level) {
      const double l0 = std::log10(std::max(mag_[k - 1], 1e-30));
      const double l1 = std::log10(std::max(mag_[k], 1e-30));
      const double lt = std::log10(std::max(level, 1e-30));
      const double t = (lt - l0) / std::max(l1 - l0, 1e-12);
      const double lf = std::log10(freq_[k - 1]) * (1.0 - t) + std::log10(freq_[k]) * t;
      lo = std::pow(10.0, lf);
      break;
    }
  }
  if (hi && lo) return *hi - *lo;
  if (hi && !lo) return *hi;  // low-pass-like response: report the upper edge
  return std::nullopt;
}

// --- Transient ---------------------------------------------------------------

double slew_rate(const TranResult& tr, NodeId node) {
  double best = 0.0;
  for (size_t k = 1; k < tr.time_s.size(); ++k) {
    const double dt = tr.time_s[k] - tr.time_s[k - 1];
    if (dt <= 0.0) continue;
    const double dv = tr.voltage(node, k) - tr.voltage(node, k - 1);
    best = std::max(best, std::fabs(dv / dt));
  }
  return best;
}

std::optional<double> crossing_time(const TranResult& tr, NodeId node, double level) {
  if (tr.time_s.size() < 2) return std::nullopt;
  const bool rising = tr.voltage(node, 0) < level;
  for (size_t k = 1; k < tr.time_s.size(); ++k) {
    const double v0 = tr.voltage(node, k - 1);
    const double v1 = tr.voltage(node, k);
    const bool crossed = rising ? (v0 < level && v1 >= level)
                                : (v0 > level && v1 <= level);
    if (crossed) {
      const double t = (level - v0) / (v1 - v0);
      return tr.time_s[k - 1] + t * (tr.time_s[k] - tr.time_s[k - 1]);
    }
  }
  return std::nullopt;
}

double final_value(const TranResult& tr, NodeId node) {
  return tr.voltage(node, tr.time_s.size() - 1);
}

std::optional<double> settling_time(const TranResult& tr, NodeId node,
                                    double tol_frac, double t_from) {
  const double vf = final_value(tr, node);
  const double band = std::max(std::fabs(vf) * tol_frac, 1e-9);
  // Walk backwards: find the last sample outside the band.
  std::optional<double> settle;
  for (size_t k = tr.time_s.size(); k-- > 0;) {
    if (tr.time_s[k] < t_from) break;
    if (std::fabs(tr.voltage(node, k) - vf) > band) {
      if (k + 1 < tr.time_s.size()) settle = tr.time_s[k + 1];
      break;
    }
    settle = tr.time_s[k];
  }
  return settle;
}

}  // namespace ape::spice
