#include "src/serve/server.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/lint/prove.h"
#include "src/runtime/sweep.h"
#include "src/spice/analysis.h"
#include "src/spice/parser.h"
#include "src/stat/corners.h"
#include "src/util/error.h"

namespace ape::serve {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void append_kv(std::string& json, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, ",\"%s\":%.17g", key, v);
  json += buf;
}

void append_kv(std::string& json, const char* key, long v) {
  json += ",\"";
  json += key;
  json += "\":";
  json += std::to_string(v);
}

void append_kv(std::string& json, const char* key, bool v) {
  json += ",\"";
  json += key;
  json += "\":";
  json += v ? "true" : "false";
}

void append_perf(std::string& json, const est::OpAmpPerf& p) {
  json += ",\"perf\":{";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "\"gain\":%.17g,\"ugf_hz\":%.17g,\"phase_margin\":%.17g,"
                "\"dc_power\":%.17g,\"gate_area\":%.17g,\"slew\":%.17g,"
                "\"cmrr_db\":%.17g,\"zout\":%.17g",
                p.gain, p.ugf_hz, p.phase_margin, p.dc_power, p.gate_area,
                p.slew, p.cmrr_db, p.zout);
  json += buf;
  json += '}';
}

}  // namespace

std::string ServerStats::summary() const {
  std::ostringstream os;
  os << "serve: connections=" << connections_opened
     << " (rejected=" << connections_rejected << ") requests=" << requests
     << " accepted=" << accepted << " ok=" << completed_ok
     << " degraded=" << degraded << " shed=" << shed_overload + shed_quota +
     shed_draining << " (overload=" << shed_overload << " quota=" << shed_quota
     << " draining=" << shed_draining << ") errors=" << errors
     << " malformed=" << malformed_frames << " framing=" << framing_errors
     << " deadline_hits=" << deadline_hits << " cancelled=" << cancelled
     << " quarantine_hits=" << quarantine_hits
     << " numeric_recoveries=" << numeric_recoveries
     << " refinement_solves=" << refinement_solves
     << " proven_infeasible=" << proven_infeasible
     << " peak_in_flight=" << peak_in_flight;
  return os.str();
}

/// One client connection: its fd, reader thread and admission ledger.
struct Server::Connection {
  int fd = -1;
  std::thread reader;
  std::atomic<bool> done{false};
  int admitted = 0;  ///< requests admitted on this connection (quota)
};

Server::Server(const est::Process& proc, ServeOptions options)
    : proc_(proc),
      options_(std::move(options)),
      cache_(options_.cache_capacity) {
  if (options_.socket_path.empty()) {
    throw SpecError("serve: socket_path is required");
  }
  if (options_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw SpecError("serve: socket path too long for AF_UNIX");
  }
  options_.max_in_flight = std::max(options_.max_in_flight, 1);
  options_.queue_slots = std::max(options_.queue_slots, 0);
  options_.max_connections = std::max(options_.max_connections, 1);
  options_.max_deadline_s =
      options_.max_deadline_s > 0.0 ? options_.max_deadline_s : 10.0;

  listen_fd_ = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw Error(std::string("serve: socket(): ") + std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // stale socket from a dead run
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    throw Error("serve: bind('" + options_.socket_path + "'): " + err);
  }
  if (listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
    throw Error("serve: listen(): " + err);
  }
  executor_ = std::make_unique<runtime::Executor>(options_.max_in_flight);
}

Server::~Server() {
  request_drain();
  close_listener();
  drain_cancel_.cancel();
  begin_connection_shutdown();
  reap_finished_connections(/*join_all=*/true);
  ::unlink(options_.socket_path.c_str());
}

void Server::request_drain() {
  draining_.store(true, std::memory_order_release);
}

void Server::close_listener() {
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::begin_connection_shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& conn : connections_) {
    if (!conn->done.load(std::memory_order_acquire) && conn->fd >= 0) {
      // Half-close: the reader sees EOF after its current frame, but the
      // write side stays open so the in-flight response still lands.
      shutdown(conn->fd, SHUT_RD);
    }
  }
}

void Server::reap_finished_connections(bool join_all) {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if (join_all || (*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside mu_: a reader thread may be taking mu_ for stats.
  for (auto& conn : finished) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->fd >= 0) close(conn->fd);
  }
}

int Server::serve_forever(int wake_fd) {
  accept_loop(wake_fd);
  close_listener();

  // Drain phase 1: half-close every connection and give in-flight work
  // the grace window to finish naturally.
  begin_connection_shutdown();
  const double grace_deadline = now_seconds() + options_.drain_grace_s;
  auto connections_alive = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& conn : connections_) {
      if (!conn->done.load(std::memory_order_acquire)) return true;
    }
    return false;
  };
  while (connections_alive() && now_seconds() < grace_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    reap_finished_connections(false);
  }

  // Drain phase 2: the grace expired — fire the drain token. Every
  // request budget is attached to it, so remaining jobs resolve at their
  // next cooperative probe and their connections answer then exit.
  if (connections_alive()) {
    drain_cancel_.cancel();
    const double hard_deadline =
        now_seconds() + options_.max_deadline_s + options_.drain_grace_s;
    while (connections_alive() && now_seconds() < hard_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      reap_finished_connections(false);
    }
  }

  reap_finished_connections(/*join_all=*/true);
  ::unlink(options_.socket_path.c_str());

  const ServerStats final_stats = stats();
  const runtime::CacheStats cs = cache_.stats();
  std::fprintf(stderr, "%s\n", final_stats.summary().c_str());
  std::fprintf(stderr,
               "serve: cache hits=%ld misses=%ld evictions=%ld entries=%ld "
               "quarantined=%zu\n",
               cs.hits, cs.misses, cs.evictions, cs.entries,
               quarantine_.quarantined_count());
  return 0;
}

void Server::accept_loop(int wake_fd) {
  while (!draining()) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_fd;
    fds[1].events = POLLIN;
    const nfds_t nfds = wake_fd >= 0 ? 2 : 1;
    const int rc = poll(fds, nfds, /*timeout_ms=*/100);
    if (rc < 0) {
      if (errno == EINTR) continue;  // signal: drain flag checked above
      break;
    }
    reap_finished_connections(false);
    if (rc == 0) continue;
    if (wake_fd >= 0 && (fds[1].revents & POLLIN) != 0) {
      request_drain();
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    bool reject = draining();
    if (!reject) {
      std::lock_guard<std::mutex> lock(mu_);
      reject = connections_.size() >=
               static_cast<size_t>(options_.max_connections);
    }
    if (reject) {
      // Over the connection limit (or drain raced the accept): answer
      // the first frame with a shed so the client sees a decision, not
      // a silent hangup... except we have not read a request yet, so the
      // honest signal is an immediate close.
      close(fd);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.connections_rejected;
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.connections_opened;
      connections_.push_back(std::move(conn));
    }
    raw->reader = std::thread([this, raw] { handle_connection(raw); });
  }
}

void Server::handle_connection(Connection* conn) {
  for (;;) {
    std::string payload;
    const FrameStatus status =
        read_frame(conn->fd, &payload, options_.max_frame_bytes);
    if (status == FrameStatus::Eof) break;
    if (status == FrameStatus::Truncated || status == FrameStatus::IoError) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.framing_errors;
      break;
    }
    if (status == FrameStatus::Oversized || status == FrameStatus::BadLength) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.framing_errors;
      }
      // The stream cannot be re-aligned (we refuse to skip an oversized
      // payload); tell the client why, then close.
      write_frame(conn->fd,
                  error_response("", std::string("frame rejected: ") +
                                         to_string(status)));
      break;
    }

    std::string response;
    Request req;
    bool parsed = false;
    try {
      req = parse_request(payload);
      parsed = true;
    } catch (const Error& e) {
      // Malformed payload inside an intact frame: the connection state
      // is uncorrupted (framing kept the stream aligned), so answer the
      // error and keep serving this client.
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.malformed_frames;
      ++stats_.errors;
      response = error_response("", e.what());
    }
    if (parsed) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.requests;
      }
      response = dispatch(*conn, req);
    }
    if (!write_frame(conn->fd, response)) break;  // client vanished
  }
  conn->done.store(true, std::memory_order_release);
}

Server::Admission Server::admit_heavy() {
  // load_ counts admitted-but-unfinished heavy jobs. Full service while
  // a pool worker is free; the queue band answers degraded (synthesize)
  // or queues (simulate); past the band, shed.
  int load = load_.load(std::memory_order_relaxed);
  for (;;) {
    if (load >= options_.max_in_flight + options_.queue_slots) {
      return Admission::Shed;
    }
    if (load_.compare_exchange_weak(load, load + 1,
                                    std::memory_order_relaxed)) {
      break;  // `load` holds the pre-increment value we won with
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.peak_in_flight = std::max<long>(stats_.peak_in_flight, load + 1);
  }
  return load < options_.max_in_flight ? Admission::Full : Admission::Degraded;
}

std::string Server::dispatch(Connection& conn, const Request& req) {
  if (req.kind == RequestKind::Ping) {
    return response_head(req.id, "ok", false) + ",\"pong\":true}";
  }
  if (req.kind == RequestKind::Stats) {
    return stats_response(req);
  }

  if (draining()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shed_draining;
    return shed_response(req.id, "draining");
  }
  if (options_.quota_per_conn > 0 && conn.admitted >= options_.quota_per_conn) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shed_quota;
    return shed_response(req.id, "quota");
  }

  switch (req.kind) {
    case RequestKind::Estimate: {
      ++conn.admitted;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.accepted;
      }
      return run_estimate(req, /*degraded=*/false);
    }
    case RequestKind::Synthesize:
      return run_synthesize(conn, req);
    case RequestKind::Simulate:
      return run_simulate(conn, req);
    case RequestKind::CornerSweep:
      return run_corner_sweep(conn, req);
    default:
      return error_response(req.id, "unhandled op");
  }
}

/// Deadline for \p req in seconds: the client ask capped by the server
/// maximum, never unbounded.
static double request_deadline_s(const Request& req, const ServeOptions& o) {
  const double asked = req.timeout_ms > 0.0 ? req.timeout_ms / 1000.0 : 0.0;
  return asked > 0.0 ? std::min(asked, o.max_deadline_s) : o.max_deadline_s;
}

std::string Server::run_estimate(const Request& req, bool degraded) {
  RunBudget budget = RunBudget::with_deadline(request_deadline_s(req, options_));
  budget.attach_cancel(&drain_cancel_);
  ScopedJobBudget ambient(budget);
  ErrorContext scope("serve[estimate]");
  try {
    const std::shared_ptr<const est::OpAmpDesign> design =
        cache_.opamp(proc_, req.spec);
    std::string json = response_head(req.id, "ok", degraded);
    append_perf(json, design->perf);
    json += '}';
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.completed_ok;
    if (degraded) ++stats_.degraded;
    return json;
  } catch (const Error& e) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.errors;
    return error_response(req.id, e.what());
  }
}

std::string Server::run_synthesize(Connection& conn, const Request& req) {
  // Feasibility pre-admission (APE-F, src/lint/prove.h): when interval
  // bounds over the whole sizing box prove the spec unreachable, the
  // request is answered *now* — microseconds, on the connection thread,
  // no executor slot, no synthesis budget — with the proof attached.
  const lint::FeasibilityProof proof = [&] {
    lint::ProveOptions po;
    po.contraction_segments = 0;  // global check only; admission is hot
    return lint::prove_opamp_feasibility(proc_, req.spec, po);
  }();
  if (proof.infeasible) {
    std::string json = response_head(req.id, "infeasible", false);
    json += ",\"proof\":" + proof.report.to_json();
    json += '}';
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.proven_infeasible;
    return json;
  }

  const Admission admission = admit_heavy();
  if (admission == Admission::Shed) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shed_overload;
    return shed_response(req.id, "overload");
  }
  ++conn.admitted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.accepted;
  }
  if (admission == Admission::Degraded) {
    // Saturated: answer now with the cheap analytic estimate instead of
    // queueing expensive synthesis — the paper's estimate-for-simulation
    // trade as a shedding discipline.
    load_.fetch_sub(1, std::memory_order_relaxed);
    return run_estimate(req, /*degraded=*/true);
  }

  const double deadline_abs =
      now_seconds() + request_deadline_s(req, options_);
  const uint64_t ordinal =
      request_ordinal_.fetch_add(1, std::memory_order_relaxed);
  std::future<std::string> result = executor_->submit([this, req, deadline_abs,
                                                       ordinal, proof] {
    ErrorContext scope("serve[synthesize#" + std::to_string(ordinal) + "]");
    const double remaining = deadline_abs - now_seconds();
    if (remaining <= 0.002 || drain_cancel_.cancelled()) {
      // Spent its whole deadline queued (or the drain fired): the honest
      // cheap answer is the analytic estimate, marked degraded.
      return run_estimate(req, /*degraded=*/true);
    }

    runtime::SupervisorOptions sup;
    sup.batch.threads = 1;
    sup.batch.seed = req.seed != 0 ? req.seed : options_.seed;
    sup.batch.cache = &cache_;
    sup.batch.synth.use_ape_seed = true;
    sup.batch.synth.anneal.iterations =
        req.iterations > 0
            ? std::min(req.iterations, options_.synth_iterations_cap)
            : options_.synth_iterations;
    // Admission already proved the spec feasible; hand the proof's box
    // and cost floor to the annealer (see SynthesisOptions).
    sup.batch.synth.feasible_box = proof.feasible_box;
    sup.batch.synth.cost_lower_bound = proof.cost_lower_bound;
    sup.retry.plain_retries = std::max(options_.retries, 0);
    sup.retry.numeric_recovery_retries = 1;
    sup.retry.relaxed_retries = 1;
    sup.retry.estimate_fallback = true;
    sup.job_timeout_s = remaining;
    sup.cancel = &drain_cancel_;
    sup.quarantine = &quarantine_;
    sup.quarantine_threshold = options_.quarantine_threshold;

    const runtime::SupervisedOpAmpResult r =
        runtime::run_supervised_opamp_job(proc_, req.spec, sup, ordinal);

    if (r.cancelled) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.cancelled;
      ++stats_.shed_draining;
      return shed_response(req.id, "draining");
    }
    if (r.quarantined) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.quarantine_hits;
      ++stats_.errors;
      return error_response(req.id, r.error);
    }
    if (!r.ok && r.deadline_hit) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.deadline_hits;
      }
      // No usable attempt inside the deadline — fall back to the
      // analytic estimate rather than failing the client.
      return run_estimate(req, /*degraded=*/true);
    }
    if (!r.ok) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.errors;
      return error_response(req.id, r.error);
    }

    const synth::SynthesisOutcome& o = r.outcome;
    std::string json = response_head(req.id, "ok", r.estimate_fallback);
    append_kv(json, "deadline_hit", r.deadline_hit);
    append_kv(json, "attempts", static_cast<long>(r.attempts));
    json += ",\"rung\":\"";
    json += to_string(r.final_rung);
    json += '"';
    append_kv(json, "meets_spec", o.meets_spec);
    append_kv(json, "sim_failed", o.sim_failed);
    append_kv(json, "cost", o.cost);
    append_kv(json, "evaluations", static_cast<long>(o.evaluations));
    json += ",\"comment\":\"" + json::escape(o.comment) + "\"";
    append_perf(json, o.design.perf);
    json += '}';
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.completed_ok;
    if (r.estimate_fallback) ++stats_.degraded;
    if (r.deadline_hit) ++stats_.deadline_hits;
    if (r.final_rung == RetryRung::NumericRecovery) ++stats_.numeric_recoveries;
    return json;
  });

  std::string response;
  try {
    response = result.get();
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.errors;
    }
    response = error_response(req.id, e.what());
  }
  load_.fetch_sub(1, std::memory_order_relaxed);
  return response;
}

std::string Server::run_simulate(Connection& conn, const Request& req) {
  const Admission admission = admit_heavy();
  if (admission == Admission::Shed) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shed_overload;
    return shed_response(req.id, "overload");
  }
  ++conn.admitted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.accepted;
  }
  // Simulation has no analytic degraded form: the queue band queues it
  // (its deadline keeps ticking, so a long wait degrades into a shed).
  const double deadline_abs =
      now_seconds() + request_deadline_s(req, options_);
  std::future<std::string> result = executor_->submit([this, req,
                                                       deadline_abs] {
    ErrorContext scope("serve[simulate]");
    const double remaining = deadline_abs - now_seconds();
    if (remaining <= 0.002 || drain_cancel_.cancelled()) {
      const bool draining = drain_cancel_.cancelled();
      std::lock_guard<std::mutex> lock(mu_);
      if (draining) {
        ++stats_.cancelled;
        ++stats_.shed_draining;
      } else {
        ++stats_.deadline_hits;
        ++stats_.shed_overload;
      }
      return shed_response(req.id, draining ? "draining" : "overload");
    }
    RunBudget budget = RunBudget::with_deadline(remaining);
    budget.attach_cancel(&drain_cancel_);
    ScopedJobBudget ambient(budget);
    try {
      spice::Circuit ckt = spice::parse_netlist(req.netlist);
      ConvergenceReport report;
      spice::DcOptions opts;
      opts.report = &report;
      spice::Solution sol;
      bool recovery_rung = false;
      try {
        sol = spice::dc_operating_point(ckt, opts);
      } catch (const NumericError&) {
        // The request-level NumericRecovery rung (DESIGN.md section 15):
        // one re-run under forced numerical health — equilibration,
        // condition estimation and iterative refinement on every solve —
        // before failing the client, mirroring the batch ladder.
        ScopedNumericHealthMode force(NumericHealthMode::Force);
        sol = spice::dc_operating_point(ckt, opts);
        recovery_rung = true;
      }
      // A request counts as a numeric recovery when any rung of the
      // DESIGN.md section 15 ladder fired on its behalf: the in-kernel
      // escalation (equilibrate-and-refactorize), the request-level
      // Force re-run above, or — the ladder's first rung — refinement
      // itself, which under ambient Auto mode only engages after pivot
      // growth or the condition estimate crossed the health thresholds.
      long recoveries =
          report.kernel.numeric_recoveries + (recovery_rung ? 1 : 0);
      if (recoveries == 0 && report.kernel.refinement_solves > 0) {
        recoveries = 1;
      }
      std::string json = response_head(req.id, "ok", false);
      append_kv(json, "converged", report.converged);
      append_kv(json, "newton_iterations", report.newton_iterations);
      append_kv(json, "numeric_recoveries", recoveries);
      append_kv(json, "refinement_solves", report.kernel.refinement_solves);
      append_kv(json, "equilibrated_solves", report.kernel.equilibrated_solves);
      json += ",\"nodes\":{";
      for (size_t n = 0; n < ckt.num_nodes(); ++n) {
        if (n != 0) json += ',';
        char buf[64];
        std::snprintf(buf, sizeof buf, "\"%s\":%.17g",
                      json::escape(ckt.node_name(static_cast<int>(n))).c_str(),
                      sol.at(static_cast<int>(n)));
        json += buf;
      }
      json += "}}";
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.completed_ok;
      stats_.numeric_recoveries += recoveries;
      stats_.refinement_solves += report.kernel.refinement_solves;
      return json;
    } catch (const Error& e) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.errors;
      if (budget.exhausted() && !budget.cancelled()) ++stats_.deadline_hits;
      if (budget.cancelled()) ++stats_.cancelled;
      return error_response(req.id, e.what());
    }
  });

  std::string response;
  try {
    response = result.get();
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.errors;
    }
    response = error_response(req.id, e.what());
  }
  load_.fetch_sub(1, std::memory_order_relaxed);
  return response;
}

std::string Server::run_corner_sweep(Connection& conn, const Request& req) {
  const Admission admission = admit_heavy();
  if (admission == Admission::Shed) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shed_overload;
    return shed_response(req.id, "overload");
  }
  ++conn.admitted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.accepted;
  }
  // A sweep has no cheap degraded form (its whole point is the grid),
  // so the queue band queues it like simulate; a long wait sheds.
  const double deadline_abs =
      now_seconds() + request_deadline_s(req, options_);
  const uint64_t ordinal =
      request_ordinal_.fetch_add(1, std::memory_order_relaxed);
  std::future<std::string> result = executor_->submit([this, req, deadline_abs,
                                                       ordinal] {
    ErrorContext scope("serve[corner_sweep#" + std::to_string(ordinal) + "]");
    const double remaining = deadline_abs - now_seconds();
    if (remaining <= 0.002 || drain_cancel_.cancelled()) {
      const bool draining = drain_cancel_.cancelled();
      std::lock_guard<std::mutex> lock(mu_);
      if (draining) {
        ++stats_.cancelled;
        ++stats_.shed_draining;
      } else {
        ++stats_.deadline_hits;
        ++stats_.shed_overload;
      }
      return shed_response(req.id, draining ? "draining" : "overload");
    }
    RunBudget budget = RunBudget::with_deadline(remaining);
    budget.attach_cancel(&drain_cancel_);
    ScopedJobBudget ambient(budget);
    try {
      runtime::SweepOptions sweep;
      // The sweep runs inside this executor slot: its internal fan-out
      // must not claim more workers or the daemon deadlocks under load.
      sweep.supervisor.batch.threads = 1;
      sweep.supervisor.batch.seed = req.seed != 0 ? req.seed : options_.seed;
      sweep.supervisor.batch.cache = &cache_;
      sweep.supervisor.cancel = &drain_cancel_;
      sweep.corners =
          stat::CornerSet::parse(req.corners.empty() ? "all" : req.corners);
      sweep.mc_samples = std::min(req.mc_samples, options_.mc_samples_cap);
      const std::vector<est::OpAmpSpec> specs{req.spec};
      const runtime::SweepResult r =
          sweep.mc_samples > 0 ? runtime::run_monte_carlo(proc_, specs, sweep)
                               : runtime::run_corner_sweep(proc_, specs, sweep);
      const runtime::SweepJobResult& job = r.jobs.at(0);
      if (!job.ok) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.errors;
        if (budget.cancelled()) ++stats_.cancelled;
        return error_response(req.id, job.error);
      }
      std::string json = response_head(req.id, "ok", false);
      json += ",\"corners\":\"";
      for (size_t c = 0; c < sweep.corners.size(); ++c) {
        if (c != 0) json += ',';
        json += sweep.corners[c].name;
      }
      json += '"';
      append_kv(json, "mc_samples", static_cast<long>(sweep.mc_samples));
      append_kv(json, "samples_per_corner",
                static_cast<long>(r.samples_per_corner));
      json += ",\"corner_estimate_ok\":\"";
      for (const uint8_t ok : job.corner_estimate_ok) json += ok ? '1' : '0';
      json += '"';
      json += ",\"corner_proven_infeasible\":\"";
      for (const uint8_t p : job.corner_proven_infeasible) json += p ? '1' : '0';
      json += '"';
      append_kv(json, "corners_pruned", static_cast<long>(r.corners_pruned));
      json += ",\"yield_report\":" + job.report.to_json();
      json += '}';
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.completed_ok;
      return json;
    } catch (const Error& e) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.errors;
      if (budget.exhausted() && !budget.cancelled()) ++stats_.deadline_hits;
      if (budget.cancelled()) ++stats_.cancelled;
      return error_response(req.id, e.what());
    }
  });

  std::string response;
  try {
    response = result.get();
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.errors;
    }
    response = error_response(req.id, e.what());
  }
  load_.fetch_sub(1, std::memory_order_relaxed);
  return response;
}

std::string Server::stats_response(const Request& req) const {
  const ServerStats s = stats();
  const runtime::CacheStats cs = cache_.stats();
  std::string json = response_head(req.id, "ok", false);
  append_kv(json, "connections_opened", s.connections_opened);
  append_kv(json, "connections_rejected", s.connections_rejected);
  append_kv(json, "requests", s.requests);
  append_kv(json, "accepted", s.accepted);
  append_kv(json, "completed_ok", s.completed_ok);
  append_kv(json, "degraded", s.degraded);
  append_kv(json, "shed_overload", s.shed_overload);
  append_kv(json, "shed_quota", s.shed_quota);
  append_kv(json, "shed_draining", s.shed_draining);
  append_kv(json, "errors", s.errors);
  append_kv(json, "malformed_frames", s.malformed_frames);
  append_kv(json, "framing_errors", s.framing_errors);
  append_kv(json, "deadline_hits", s.deadline_hits);
  append_kv(json, "cancelled", s.cancelled);
  append_kv(json, "quarantine_hits", s.quarantine_hits);
  append_kv(json, "numeric_recoveries", s.numeric_recoveries);
  append_kv(json, "refinement_solves", s.refinement_solves);
  append_kv(json, "proven_infeasible", s.proven_infeasible);
  append_kv(json, "peak_in_flight", s.peak_in_flight);
  append_kv(json, "in_flight", static_cast<long>(load()));
  append_kv(json, "draining", draining());
  append_kv(json, "cache_hits", cs.hits);
  append_kv(json, "cache_misses", cs.misses);
  append_kv(json, "cache_evictions", cs.evictions);
  append_kv(json, "cache_entries", cs.entries);
  append_kv(json, "quarantined_specs",
            static_cast<long>(quarantine_.quarantined_count()));
  json += '}';
  return json;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ape::serve
