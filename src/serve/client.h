#pragma once
/// \file client.h
/// Minimal blocking client for the estimation service: connect to the
/// daemon's Unix socket, exchange length-prefixed JSON frames
/// (protocol.h). Used by the ape_client CLI and by serve_test — which is
/// why the raw fd and a send_raw() escape hatch are exposed: the
/// robustness tests must be able to write deliberately broken bytes
/// (truncated frames, oversized length prefixes) that the Client's own
/// framing would never produce.

#include <cstddef>
#include <string>

#include "src/serve/protocol.h"

namespace ape::serve {

/// Connection establishment policy. A daemon that is still binding its
/// socket (or restarting under a supervisor) answers ECONNREFUSED or
/// ENOENT for a moment; bounded exponential backoff rides that window
/// out instead of failing the first script line of a fresh deployment.
struct ConnectOptions {
  /// Re-attempts after the initial connect (0 = fail immediately, the
  /// historical behaviour). Only ECONNREFUSED / ENOENT are retried —
  /// every other errno (EACCES, path too long, ...) is permanent.
  int retries = 0;
  /// First wait in milliseconds; doubles per attempt, capped below.
  int backoff_ms = 50;
  /// Cap on a single wait.
  int backoff_max_ms = 2000;
};

class Client {
public:
  /// Connect to the daemon at \p socket_path (throws ape::Error when the
  /// socket is absent or refuses after the retry budget is spent).
  explicit Client(const std::string& socket_path,
                  const ConnectOptions& connect = ConnectOptions{});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }

  /// One request/response round trip: frame \p request_json, read one
  /// response frame back. Throws ape::Error on any framing failure (the
  /// daemon closed the connection, truncated stream, ...).
  std::string call(const std::string& request_json);

  /// Send one well-formed frame without waiting for a response.
  void send(const std::string& request_json);

  /// Read one response frame (after send()). Throws on framing failure.
  std::string receive();

  /// Write \p n raw bytes, bypassing framing — tests only.
  bool send_raw(const void* data, size_t n);

  /// Half-close the write side (the daemon sees EOF after the current
  /// frame) while responses stay readable.
  void shutdown_write();

  int fd() const { return fd_; }

private:
  int fd_ = -1;
};

}  // namespace ape::serve
