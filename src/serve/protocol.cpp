#include "src/serve/protocol.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "src/util/error.h"

namespace ape::serve {
namespace {

/// read() exactly \p n bytes; returns bytes actually read before EOF
/// (== n on success), or -1 on a hard error.
ssize_t read_exact(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = read(fd, buf + got, n - got);
    if (r > 0) {
      got += static_cast<size_t>(r);
    } else if (r == 0) {
      break;  // EOF
    } else if (errno != EINTR) {
      return -1;
    }
  }
  return static_cast<ssize_t>(got);
}

}  // namespace

const char* to_string(FrameStatus status) {
  switch (status) {
    case FrameStatus::Ok: return "ok";
    case FrameStatus::Eof: return "eof";
    case FrameStatus::Truncated: return "truncated";
    case FrameStatus::Oversized: return "oversized";
    case FrameStatus::BadLength: return "bad-length";
    case FrameStatus::IoError: return "io-error";
  }
  return "?";
}

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::Estimate: return "estimate";
    case RequestKind::Synthesize: return "synthesize";
    case RequestKind::Simulate: return "simulate";
    case RequestKind::CornerSweep: return "corner_sweep";
    case RequestKind::Stats: return "stats";
    case RequestKind::Ping: return "ping";
  }
  return "?";
}

FrameStatus read_frame(int fd, std::string* payload, uint32_t max_bytes) {
  unsigned char header[4];
  const ssize_t h = read_exact(fd, reinterpret_cast<char*>(header), 4);
  if (h < 0) return FrameStatus::IoError;
  if (h == 0) return FrameStatus::Eof;
  if (h < 4) return FrameStatus::Truncated;
  const uint32_t len = (uint32_t(header[0]) << 24) | (uint32_t(header[1]) << 16) |
                       (uint32_t(header[2]) << 8) | uint32_t(header[3]);
  if (len == 0) return FrameStatus::BadLength;
  if (len > max_bytes) return FrameStatus::Oversized;
  payload->resize(len);
  const ssize_t b = read_exact(fd, payload->data(), len);
  if (b < 0) return FrameStatus::IoError;
  if (static_cast<uint32_t>(b) < len) return FrameStatus::Truncated;
  return FrameStatus::Ok;
}

bool write_frame(int fd, const std::string& payload) {
  if (payload.size() > 0xffffffffull) return false;
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>(len >> 24),
      static_cast<unsigned char>(len >> 16),
      static_cast<unsigned char>(len >> 8),
      static_cast<unsigned char>(len),
  };
  std::string frame(reinterpret_cast<const char*>(header), 4);
  frame += payload;
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t w = write(fd, frame.data() + sent, frame.size() - sent);
    if (w > 0) {
      sent += static_cast<size_t>(w);
    } else if (w < 0 && errno == EINTR) {
      continue;
    } else {
      return false;  // EPIPE / ECONNRESET: peer is gone
    }
  }
  return true;
}

// ---------------------------------------------------------------------------

namespace {

double as_spec_number(const std::string& key, const json::Value& value) {
  if (value.kind != json::Value::Kind::Number) {
    throw ParseError("request: '" + key + "' must be a number");
  }
  return value.number;
}

est::OpAmpSpec spec_from_json(const json::Value& obj) {
  if (obj.kind != json::Value::Kind::Object) {
    throw ParseError("request: 'spec' must be an object");
  }
  est::OpAmpSpec spec;
  for (const auto& [key, value] : obj.members) {
    if (key == "gain") {
      spec.gain = as_spec_number(key, value);
    } else if (key == "ugf_hz") {
      spec.ugf_hz = as_spec_number(key, value);
    } else if (key == "ibias") {
      spec.ibias = as_spec_number(key, value);
    } else if (key == "cload") {
      spec.cload = as_spec_number(key, value);
    } else if (key == "zout") {
      spec.zout = as_spec_number(key, value);
    } else if (key == "area_budget") {
      spec.area_budget = as_spec_number(key, value);
    } else if (key == "buffer") {
      if (value.kind != json::Value::Kind::Bool) {
        throw ParseError("request: 'buffer' must be a bool");
      }
      spec.buffer = value.boolean;
    } else if (key == "source") {
      const std::string& s = value.as_string();
      if (s == "mirror") {
        spec.source = est::CurrentSourceKind::Mirror;
      } else if (s == "wilson") {
        spec.source = est::CurrentSourceKind::Wilson;
      } else {
        throw ParseError("request: source must be mirror|wilson, got '" + s +
                         "'");
      }
    } else {
      throw ParseError("request: unknown spec key '" + key + "'");
    }
  }
  return spec;
}

}  // namespace

Request parse_request(const std::string& payload) {
  const json::Value doc = json::parse(payload);
  if (doc.kind != json::Value::Kind::Object) {
    throw ParseError("request: payload must be a JSON object");
  }
  Request req;
  const json::Value* op = doc.find("op");
  if (op == nullptr) throw ParseError("request: missing 'op'");
  const std::string& kind = op->as_string();
  if (kind == "estimate") {
    req.kind = RequestKind::Estimate;
  } else if (kind == "synthesize") {
    req.kind = RequestKind::Synthesize;
  } else if (kind == "simulate") {
    req.kind = RequestKind::Simulate;
  } else if (kind == "corner_sweep") {
    req.kind = RequestKind::CornerSweep;
  } else if (kind == "stats") {
    req.kind = RequestKind::Stats;
  } else if (kind == "ping") {
    req.kind = RequestKind::Ping;
  } else {
    throw ParseError("request: unknown op '" + kind + "'");
  }

  if (const json::Value* id = doc.find("id")) req.id = id->as_string();
  if (const json::Value* t = doc.find("timeout_ms")) {
    req.timeout_ms = t->as_number();
    if (req.timeout_ms < 0.0) throw ParseError("request: negative timeout_ms");
  }
  if (const json::Value* it = doc.find("iterations")) {
    req.iterations = static_cast<int>(it->as_long());
    if (req.iterations < 0) throw ParseError("request: negative iterations");
  }
  if (const json::Value* s = doc.find("seed")) {
    req.seed = static_cast<uint64_t>(s->as_number());
  }

  if (req.kind == RequestKind::Estimate || req.kind == RequestKind::Synthesize ||
      req.kind == RequestKind::CornerSweep) {
    const json::Value* spec = doc.find("spec");
    if (spec != nullptr) req.spec = spec_from_json(*spec);
  }
  if (req.kind == RequestKind::CornerSweep) {
    if (const json::Value* c = doc.find("corners")) req.corners = c->as_string();
    if (const json::Value* m = doc.find("mc_samples")) {
      req.mc_samples = static_cast<int>(m->as_long());
      if (req.mc_samples < 0) throw ParseError("request: negative mc_samples");
    }
  }
  if (req.kind == RequestKind::Simulate) {
    const json::Value* netlist = doc.find("netlist");
    if (netlist == nullptr) throw ParseError("request: simulate needs 'netlist'");
    req.netlist = netlist->as_string();
  }
  return req;
}

std::string spec_to_json(const est::OpAmpSpec& spec) {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "{\"gain\":%.17g,\"ugf_hz\":%.17g,\"ibias\":%.17g,"
                "\"cload\":%.17g,\"zout\":%.17g,\"area_budget\":%.17g,"
                "\"buffer\":%s,\"source\":\"%s\"}",
                spec.gain, spec.ugf_hz, spec.ibias, spec.cload, spec.zout,
                spec.area_budget, spec.buffer ? "true" : "false",
                spec.source == est::CurrentSourceKind::Wilson ? "wilson"
                                                              : "mirror");
  return buf;
}

std::string response_head(const std::string& id, const std::string& status,
                          bool degraded) {
  return "{\"id\":\"" + json::escape(id) + "\",\"status\":\"" + status +
         "\",\"degraded\":" + (degraded ? "true" : "false");
}

std::string error_response(const std::string& id, const std::string& what) {
  return response_head(id, "error", false) + ",\"error\":\"" +
         json::escape(what) + "\"}";
}

std::string shed_response(const std::string& id, const std::string& reason) {
  return response_head(id, "shed", false) + ",\"reason\":\"" + reason + "\"}";
}

}  // namespace ape::serve
