#pragma once
/// \file protocol.h
/// Wire protocol of the estimation service (DESIGN.md section 11).
///
/// Framing: every message — request or response — is one frame:
///
///   [4-byte big-endian payload length N] [N bytes of UTF-8 JSON]
///
/// The length prefix is what makes malformed *payloads* recoverable: a
/// frame whose JSON does not parse is rejected with an error response,
/// but the byte stream stays aligned on frame boundaries, so the same
/// connection keeps working. Only framing-level damage closes the
/// connection: a length above the negotiated cap (the client is either
/// broken or hostile; we will not stream-skip gigabytes), a zero length
/// (no payload to diagnose), or EOF mid-frame.
///
/// Requests (all fields beyond "op" optional unless noted):
///
///   {"op":"estimate",  "id":"r1", "timeout_ms":500, "spec":{...}}
///   {"op":"synthesize","id":"r2", "timeout_ms":2000, "iterations":400,
///                      "spec":{...}}
///   {"op":"simulate",  "id":"r3", "timeout_ms":500, "netlist":"..."}
///   {"op":"corner_sweep","id":"r4", "spec":{...}, "corners":"all",
///                      "mc_samples":32}
///   {"op":"stats",     "id":"r5"}
///   {"op":"ping",      "id":"r6"}
///
/// "spec" keys mirror the ape_batch spec-file grammar: gain, ugf_hz,
/// ibias, cload, zout, area_budget, buffer (bool), source
/// ("mirror"|"wilson"). Unknown keys are rejected (a typoed constraint
/// silently ignored is worse than an error).
///
/// Responses always carry "id" (echoed, "" when the request had none),
/// "status" ("ok" | "shed" | "error" | "infeasible") and "degraded"
/// (true when the server answered a synthesize request with the analytic
/// estimate under load). "shed" responses carry "reason" ("overload" |
/// "quota" | "draining"); "error" responses carry "error". "infeasible"
/// responses — a synthesize spec proven unreachable over the whole
/// sizing box at admission (APE-F001, src/lint/prove.h) — carry "proof":
/// the lint Report JSON whose APE-F findings state the violated
/// inequality and the guaranteed metric interval. They are answered on
/// the connection thread in microseconds without an executor slot.

#include <cstdint>
#include <string>

#include "src/estimator/opamp.h"
#include "src/util/json.h"

namespace ape::serve {

/// Default cap on one frame's payload (requests and responses).
constexpr uint32_t kDefaultMaxFrameBytes = 1u << 20;

/// Outcome of reading one frame from a blocking fd.
enum class FrameStatus {
  Ok,         ///< *payload holds a complete frame
  Eof,        ///< clean end-of-stream on a frame boundary
  Truncated,  ///< EOF mid-header or mid-payload
  Oversized,  ///< length prefix exceeded the cap (connection must close)
  BadLength,  ///< zero-length frame (connection must close)
  IoError,    ///< read() failed (errno other than EINTR)
};

const char* to_string(FrameStatus status);

/// Read one length-prefixed frame. Blocks; retries EINTR.
FrameStatus read_frame(int fd, std::string* payload,
                       uint32_t max_bytes = kDefaultMaxFrameBytes);

/// Write one length-prefixed frame (handles short writes; retries
/// EINTR). Returns false on any write failure, e.g. EPIPE after the
/// peer vanished — callers treat that as "client gone", never fatal.
bool write_frame(int fd, const std::string& payload);

// ---------------------------------------------------------------------------
// Request / response model.

enum class RequestKind {
  Estimate,
  Synthesize,
  Simulate,
  CornerSweep,
  Stats,
  Ping,
};

const char* to_string(RequestKind kind);

struct Request {
  RequestKind kind = RequestKind::Ping;
  std::string id;          ///< client echo tag ("" when absent)
  est::OpAmpSpec spec;     ///< estimate / synthesize / sweep payload
  std::string netlist;     ///< simulate payload (SPICE deck)
  double timeout_ms = 0.0; ///< requested deadline; the server caps it
  int iterations = 0;      ///< synthesize: anneal iterations (server-capped)
  uint64_t seed = 0;       ///< synthesize/sweep: seed (0 = server default)
  std::string corners;     ///< corner_sweep: selection ("" = "all")
  int mc_samples = 0;      ///< corner_sweep: MC draws per corner (capped)
};

/// Parse one request payload. Throws ape::ParseError on malformed JSON,
/// an unknown op, unknown spec keys, or wrong value types — the server
/// turns that into an "error" response without touching connection
/// state.
Request parse_request(const std::string& payload);

/// Serialize \p spec back to the request JSON spec object (used by the
/// client CLI and tests).
std::string spec_to_json(const est::OpAmpSpec& spec);

// Response assembly helpers (the server composes payload fields itself;
// these keep status/envelope spelling in one place).

/// {"id":...,"status":"error","degraded":false,"error":...}
std::string error_response(const std::string& id, const std::string& what);

/// {"id":...,"status":"shed","degraded":false,"reason":...}
std::string shed_response(const std::string& id, const std::string& reason);

/// Envelope opener: {"id":...,"status":...,"degraded":...  — callers
/// append ",key:value..." fields and the closing '}'.
std::string response_head(const std::string& id, const std::string& status,
                          bool degraded);

}  // namespace ape::serve
