#pragma once
/// \file server.h
/// ape_serve: the overload-safe estimation daemon (DESIGN.md section
/// 11). A long-running server that accepts estimate / synthesize /
/// simulate jobs over a Unix-domain socket (length-prefixed JSON frames,
/// protocol.h), multiplexes them onto one shared runtime::Executor, and
/// runs every heavy request through the supervised job lifecycle
/// (runtime::run_supervised_opamp_job: deadline, retry ladder,
/// quarantine) with one bounded EstimateCache shared across all clients.
///
/// Robustness is the design driver, not throughput:
///
///  - Admission control. Heavy work (synthesize, simulate) is admitted
///    only while `load < max_in_flight + queue_slots`, where load counts
///    admitted-but-unfinished heavy jobs. The executor pool has exactly
///    max_in_flight workers, so queue_slots bounds the backlog a client
///    burst can park on the daemon.
///  - Load shedding with graceful degradation. In the band
///    [max_in_flight, max_in_flight + queue_slots) a synthesize request
///    is not queued — it is answered *immediately* with the analytic APE
///    estimate (the paper's cheap-estimate-for-expensive-simulation
///    trade, applied as a server discipline) and marked
///    `"degraded": true`. Above the band every heavy request is shed
///    with `"status":"shed","reason":"overload"`. Estimate requests are
///    themselves the cheap path: they always run (inline, off the
///    executor) unless a per-client quota or drain sheds them.
///  - Per-client quotas. Each connection may have at most
///    quota_per_conn requests admitted (0 = unlimited); beyond that it
///    sheds with reason "quota" — one greedy client cannot starve the
///    socket.
///  - Hard per-request deadlines. Every request runs under a RunBudget
///    whose deadline is min(client timeout_ms, max_deadline_s) — always
///    finite — wired to the server's drain CancelToken. A request can
///    therefore never outlive the server's grace window, and a stalled
///    solve stops at its next cooperative probe.
///  - Malformed input never corrupts connection state. Bad JSON in a
///    well-framed payload gets an "error" response and the connection
///    continues (framing keeps the stream aligned). Only framing damage
///    (oversized / zero length / truncation) closes the connection — and
///    only that connection.
///  - Graceful drain. request_drain() (or SIGTERM via
///    util::install_cancel_on_signal + serve main) stops the accept
///    loop, half-closes every connection's read side (in-flight requests
///    still get their responses), and waits drain_grace_s; if work is
///    still running then, the drain CancelToken fires and remaining jobs
///    resolve at their next probe (estimate fallback or cancelled
///    error). Every *accepted* request is answered before exit; the
///    final stats flush to stderr and serve_forever() returns 0.
///
/// Concurrency model: one acceptor (the serve_forever caller's thread)
/// polling {listen fd, signal wake fd}; one reader thread per
/// connection, each handling its frames strictly in order (responses
/// are never interleaved on a connection); heavy jobs run on the shared
/// Executor while the connection thread waits on the future. All
/// shared state is either atomic counters or mutex-guarded (THREAD-
/// SAFETY RULE category (c), diagnostics.h).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/estimator/process.h"
#include "src/runtime/cache.h"
#include "src/runtime/executor.h"
#include "src/runtime/supervisor.h"
#include "src/serve/protocol.h"
#include "src/util/diagnostics.h"

namespace ape::serve {

struct ServeOptions {
  std::string socket_path;     ///< Unix socket path (required)
  int max_in_flight = 2;       ///< executor workers == full-service slots
  int queue_slots = 4;         ///< admitted-beyond-saturation band (degraded)
  int max_connections = 128;   ///< concurrent client connections
  int quota_per_conn = 0;      ///< admitted requests per connection (0 = inf)
  double max_deadline_s = 10.0;///< hard cap on any request's deadline
  double drain_grace_s = 5.0;  ///< drain: time in-flight work may finish
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  size_t cache_capacity = 1024;///< EstimateCache bound per level (0 = inf)
  int synth_iterations = 800;  ///< default anneal iterations
  int synth_iterations_cap = 4000;  ///< cap on client-requested iterations
  int retries = 1;             ///< plain retries in the request ladder
  int quarantine_threshold = 3;///< consecutive failures before quarantine
  uint64_t seed = 1;           ///< base seed; request i uses stream i
  int mc_samples_cap = 256;    ///< cap on corner_sweep mc_samples
};

/// Monotonic server counters (snapshot). The `stats` op serializes this
/// plus the cache counters.
struct ServerStats {
  long connections_opened = 0;
  long connections_rejected = 0;  ///< at accept: over limit or draining
  long requests = 0;          ///< well-formed requests parsed
  long accepted = 0;          ///< admitted into service (incl. degraded)
  long completed_ok = 0;      ///< "ok" responses
  long degraded = 0;          ///< degraded (estimate-only) responses
  long shed_overload = 0;
  long shed_quota = 0;
  long shed_draining = 0;
  long proven_infeasible = 0; ///< synthesize requests rejected by an
                              ///< APE-F001 feasibility proof at admission
                              ///< (answered with the proof, no executor slot)
  long errors = 0;            ///< "error" responses (parse or job failure)
  long malformed_frames = 0;  ///< payloads that failed to parse
  long framing_errors = 0;    ///< oversized / zero-length / truncated frames
  long deadline_hits = 0;
  long cancelled = 0;
  long quarantine_hits = 0;   ///< requests skipped on a quarantined spec
  long numeric_recoveries = 0;///< requests rescued by the numerical-health
                              ///< ladder (kernel-level recoveries plus
                              ///< NumericRecovery retry rungs, DESIGN.md §15)
  long refinement_solves = 0; ///< kernel solves that ran iterative refinement
  long peak_in_flight = 0;

  std::string summary() const;  ///< one-line human-readable flush
};

class Server {
public:
  /// Binds and listens immediately (throws ape::Error on failure); the
  /// accept loop runs inside serve_forever().
  Server(const est::Process& proc, ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept and serve until drained. Returns 0 after a clean drain in
  /// which every accepted request was answered. \p wake_fd (-1 = none)
  /// is polled alongside the listener; when it becomes readable —
  /// util::signal_wake_fd() after SIGTERM — the server starts its drain.
  int serve_forever(int wake_fd = -1);

  /// Begin the graceful drain (idempotent, callable from any thread —
  /// including the CancelToken path of a signal handler via wake_fd).
  void request_drain();

  /// True once request_drain() was called (or a wake fired).
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  ServerStats stats() const;
  runtime::CacheStats cache_stats() const { return cache_.stats(); }
  const std::string& socket_path() const { return options_.socket_path; }

  /// Current admitted-but-unfinished heavy jobs (test observability).
  int load() const { return load_.load(std::memory_order_relaxed); }

private:
  struct Connection;

  void accept_loop(int wake_fd);
  void handle_connection(Connection* conn);
  /// Serve one parsed request on \p conn; returns the response payload.
  std::string dispatch(Connection& conn, const Request& req);

  std::string run_estimate(const Request& req, bool degraded);
  std::string run_synthesize(Connection& conn, const Request& req);
  std::string run_simulate(Connection& conn, const Request& req);
  std::string run_corner_sweep(Connection& conn, const Request& req);
  std::string stats_response(const Request& req) const;

  /// Admission decision for one heavy request; increments load_ when
  /// admitted. Mode of service under the current load.
  enum class Admission { Full, Degraded, Shed };
  Admission admit_heavy();

  void close_listener();
  void begin_connection_shutdown();  ///< half-close every live connection
  void reap_finished_connections(bool join_all);

  est::Process proc_;
  ServeOptions options_;
  int listen_fd_ = -1;

  runtime::EstimateCache cache_;
  runtime::QuarantineRegistry quarantine_;
  std::unique_ptr<runtime::Executor> executor_;
  CancelToken drain_cancel_;  ///< fires after the drain grace expires

  std::atomic<bool> draining_{false};
  std::atomic<int> load_{0};
  std::atomic<uint64_t> request_ordinal_{0};

  mutable std::mutex mu_;  ///< guards stats_ and connections_
  ServerStats stats_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace ape::serve
