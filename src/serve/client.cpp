#include "src/serve/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/util/error.h"

namespace ape::serve {

Client::Client(const std::string& socket_path) {
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw SpecError("client: socket path too long for AF_UNIX");
  }
  fd_ = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw Error(std::string("client: socket(): ") + std::strerror(errno));
  }
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  int rc;
  do {
    rc = connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const std::string err = std::strerror(errno);
    close(fd_);
    fd_ = -1;
    throw Error("client: connect('" + socket_path + "'): " + err);
  }
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

void Client::send(const std::string& request_json) {
  if (!write_frame(fd_, request_json)) {
    throw Error("client: send failed (daemon gone?)");
  }
}

std::string Client::receive() {
  std::string payload;
  const FrameStatus status = read_frame(fd_, &payload);
  if (status != FrameStatus::Ok) {
    throw Error(std::string("client: response frame: ") + to_string(status));
  }
  return payload;
}

std::string Client::call(const std::string& request_json) {
  send(request_json);
  return receive();
}

bool Client::send_raw(const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = write(fd_, p + sent, n - sent);
    if (w > 0) {
      sent += static_cast<size_t>(w);
    } else if (w < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

void Client::shutdown_write() { shutdown(fd_, SHUT_WR); }

}  // namespace ape::serve
