#include "src/serve/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/util/error.h"

namespace ape::serve {

namespace {

/// One connect(2) attempt; returns 0 or the failing errno. Opens and, on
/// failure, closes its own fd so a retry starts from a clean socket (a
/// failed connect leaves the fd in an unspecified state on POSIX).
int try_connect(const sockaddr_un& addr, int* out_fd) {
  const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno;
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int saved = errno;
    close(fd);
    return saved;
  }
  *out_fd = fd;
  return 0;
}

}  // namespace

Client::Client(const std::string& socket_path, const ConnectOptions& connect) {
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw SpecError("client: socket path too long for AF_UNIX");
  }
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);

  const int attempts = 1 + std::max(connect.retries, 0);
  int err = 0;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Bounded exponential backoff: backoff_ms * 2^(attempt-1), capped.
      // Transient-only — a daemon mid-startup answers ENOENT (socket not
      // yet bound) or ECONNREFUSED (bound, not yet listening).
      long wait = std::max(connect.backoff_ms, 0);
      for (int i = 1; i < attempt && wait < connect.backoff_max_ms; ++i) {
        wait *= 2;
      }
      wait = std::min<long>(wait, std::max(connect.backoff_max_ms, 0));
      if (wait > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(wait));
      }
    }
    err = try_connect(addr, &fd_);
    if (err == 0) return;
    if (err != ECONNREFUSED && err != ENOENT) break;  // permanent
  }
  throw Error("client: connect('" + socket_path +
              "'): " + std::strerror(err) +
              (attempts > 1 ? " (after " + std::to_string(attempts) +
                                  " attempts)"
                            : ""));
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

void Client::send(const std::string& request_json) {
  if (!write_frame(fd_, request_json)) {
    throw Error("client: send failed (daemon gone?)");
  }
}

std::string Client::receive() {
  std::string payload;
  const FrameStatus status = read_frame(fd_, &payload);
  if (status != FrameStatus::Ok) {
    throw Error(std::string("client: response frame: ") + to_string(status));
  }
  return payload;
}

std::string Client::call(const std::string& request_json) {
  send(request_json);
  return receive();
}

bool Client::send_raw(const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = write(fd_, p + sent, n - sent);
    if (w > 0) {
      sent += static_cast<size_t>(w);
    } else if (w < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

void Client::shutdown_write() { shutdown(fd_, SHUT_WR); }

}  // namespace ape::serve
