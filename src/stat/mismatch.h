#pragma once
/// \file mismatch.h
/// Pelgrom-style Monte-Carlo mismatch sampling (DESIGN.md section 12):
/// per-sample perturbations of the model cards with
///
///   sigma(dVth)    = A_vt / sqrt(W L)
///   sigma(dK'/K')  = A_k  / sqrt(W L)
///
/// evaluated at a representative device area (the estimator works at the
/// *card* level, so one draw per card stands in for the per-device
/// draws a transistor-level Monte Carlo would make — the matched-pair
/// offset that dominates opamp yield).
///
/// Determinism contract: sample s of job j at corner c draws from the
/// dedicated stream Rng::derive_stream(seed, kMismatchStream(j, c, s))
/// (stream_ids.h), with a fixed draw order (NMOS Vth, NMOS K', PMOS
/// Vth, PMOS K'). Results are a pure function of (base, model, seed, j,
/// c, s) — bit-identical at any thread count and across resume.

#include <cstdint>

#include "src/estimator/process.h"

namespace ape::stat {

/// Pelgrom matching coefficients and the representative device area the
/// card-level sigmas are evaluated at. Defaults are typical published
/// 1.2 um-class values: A_vt = 15 mV·um, A_k = 2 %·um.
struct PelgromModel {
  double a_vt = 15e-9;   ///< sigma(dVth) * sqrt(WL) [V·m]
  double a_k = 0.02e-6;  ///< sigma(dK'/K') * sqrt(WL) [·m]
  double w_ref = 10e-6;  ///< representative device width [m]
  double l_ref = 2.4e-6; ///< representative device length [m]

  /// sigma(dVth) at a W x L device [V].
  double sigma_vth(double w, double l) const;
  /// Relative sigma(dK'/K') at a W x L device.
  double sigma_k(double w, double l) const;
};

/// Draw one Monte-Carlo sample: perturb both cards of \p base with
/// gaussian Pelgrom deltas at the model's reference area, tag the
/// variant ("<base-variant>/mc<sample>") so the sample has its own
/// cache/quarantine identity. \p job, \p corner and \p sample key the
/// RNG stream (see file comment); they must fit the stream_ids.h field
/// widths (job < 2^30, corner < 64, sample < 2^20) or SpecError is
/// thrown.
est::Process sample_mismatch(const est::Process& base,
                             const PelgromModel& model, uint64_t seed,
                             uint64_t job, uint64_t corner, uint64_t sample);

}  // namespace ape::stat
