#pragma once
/// \file corners.h
/// PVT corner sets: named CornerDelta recipes realized against any base
/// Process (DESIGN.md section 12). The corner naming follows the
/// pyopus/industrial convention the related sizing literature uses:
///
///   tm   typical mean          — nominal skew, nominal vdd, 27 C
///   wp   worst power  (FF)     — fast N, fast P, vdd +10%, -40 C
///   ws   worst speed  (SS)     — slow N, slow P, vdd -10%, 125 C
///   wo   worst one    (FS)     — fast N, slow P, vdd -10%, 125 C
///   wz   worst zero   (SF)     — slow N, fast P, vdd -10%, 125 C
///   hot  temperature-only      — nominal skew, nominal vdd, 125 C
///   cold temperature-only      — nominal skew, nominal vdd, -40 C
///
/// Skew magnitudes are the classic +/-100 mV on |Vth| and +/-10% on K';
/// temperature scaling (mobility, |Vth|) is applied by Process::corner
/// on top of the skew. The tm corner's delta is the identity recipe: it
/// realizes to a process that is numerically equal to the base but
/// carries variant "tm" — a *distinct* cache identity (see the cache-key
/// regression tests), which is what lets a sweep share the tm estimate
/// with the nominal sizing pass while never colliding blindly.

#include <string>
#include <vector>

#include "src/estimator/process.h"

namespace ape::stat {

/// An ordered set of named PVT corners. Order is part of the contract:
/// corner index c keys the mismatch stream ids (stream_ids.h) and the
/// per-corner slots of a YieldReport.
class CornerSet {
public:
  /// The full 7-corner set in the order documented above.
  static CornerSet all();

  /// Just the typical-mean corner.
  static CornerSet nominal();

  /// Parse a corner selection: "all" or a comma-separated subset of the
  /// 7 names ("tm,ws,wo"). Unknown names throw SpecError. Order follows
  /// the request, duplicates throw.
  static CornerSet parse(const std::string& selection);

  const std::vector<est::CornerDelta>& corners() const { return corners_; }
  size_t size() const { return corners_.size(); }
  const est::CornerDelta& operator[](size_t i) const { return corners_[i]; }

  /// Index of a corner by name, -1 when absent.
  int index_of(const std::string& name) const;

  /// Derive the corner process cards from \p base (one Process::corner
  /// call per entry, same order as corners()).
  std::vector<est::Process> realize(const est::Process& base) const;

  /// Comma-joined corner names ("tm,wp,ws,...").
  std::string names() const;

private:
  std::vector<est::CornerDelta> corners_;
};

}  // namespace ape::stat
