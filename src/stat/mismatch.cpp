#include "src/stat/mismatch.h"

#include <cmath>
#include <string>

#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/stream_ids.h"

namespace ape::stat {

double PelgromModel::sigma_vth(double w, double l) const {
  if (w <= 0.0 || l <= 0.0) {
    throw SpecError("PelgromModel::sigma_vth: non-positive device area");
  }
  return a_vt / std::sqrt(w * l);
}

double PelgromModel::sigma_k(double w, double l) const {
  if (w <= 0.0 || l <= 0.0) {
    throw SpecError("PelgromModel::sigma_k: non-positive device area");
  }
  return a_k / std::sqrt(w * l);
}

est::Process sample_mismatch(const est::Process& base,
                             const PelgromModel& model, uint64_t seed,
                             uint64_t job, uint64_t corner, uint64_t sample) {
  if (job >= (1ULL << streams::kMismatchJobBits) ||
      corner >= (1ULL << streams::kMismatchCornerBits) ||
      sample >= (1ULL << streams::kMismatchSampleBits)) {
    throw SpecError("sample_mismatch: (job, corner, sample) out of the "
                    "stream-id field widths (see stream_ids.h)");
  }
  Rng rng(Rng::derive_stream(seed,
                             streams::kMismatchStream(job, corner, sample)));
  const double svt = model.sigma_vth(model.w_ref, model.l_ref);
  const double sk = model.sigma_k(model.w_ref, model.l_ref);
  // Fixed draw order — part of the determinism contract (file comment).
  const double n_dvth = rng.gauss() * svt;
  const double n_dk = rng.gauss() * sk;
  const double p_dvth = rng.gauss() * svt;
  const double p_dk = rng.gauss() * sk;
  est::Process out = base;
  est::perturb_card(out.nmos, n_dvth, 1.0 + n_dk);
  est::perturb_card(out.pmos, p_dvth, 1.0 + p_dk);
  const std::string tag = "mc" + std::to_string(sample);
  out.variant = out.variant.empty() ? tag : out.variant + "/" + tag;
  return out;
}

}  // namespace ape::stat
