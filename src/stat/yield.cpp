#include "src/stat/yield.h"

#include <cmath>
#include <cstdio>

#include "src/util/error.h"

namespace ape::stat {

void CriteriaCounts::add(const PointOutcome& p) {
  ++samples;
  if (p.functional) ++functional;
  if (p.gain_ok) ++gain;
  if (p.ugf_ok) ++ugf;
  if (p.pm_ok) ++phase_margin;
  if (p.pass()) ++pass;
}

CriteriaCounts& CriteriaCounts::operator+=(const CriteriaCounts& o) {
  samples += o.samples;
  functional += o.functional;
  gain += o.gain;
  ugf += o.ugf;
  phase_margin += o.phase_margin;
  pass += o.pass;
  return *this;
}

WilsonInterval wilson_interval(long passes, long samples, double z) {
  WilsonInterval w;
  if (samples <= 0) return w;  // vacuous [0, 1]
  const double n = double(samples);
  const double p = double(passes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  w.lo = std::max(0.0, center - half);
  w.hi = std::min(1.0, center + half);
  return w;
}

YieldReport::YieldReport(const std::vector<std::string>& corner_names) {
  corners.reserve(corner_names.size());
  for (const auto& name : corner_names) corners.emplace_back(name, CriteriaCounts{});
}

void YieldReport::add(size_t corner_index, const PointOutcome& p) {
  if (corner_index >= corners.size()) {
    throw SpecError("YieldReport::add: corner index out of range");
  }
  corners[corner_index].second.add(p);
  total.add(p);
}

void YieldReport::merge(const YieldReport& o) {
  if (o.corners.size() != corners.size()) {
    throw SpecError("YieldReport::merge: corner layouts differ");
  }
  for (size_t c = 0; c < corners.size(); ++c) {
    if (corners[c].first != o.corners[c].first) {
      throw SpecError("YieldReport::merge: corner layouts differ");
    }
    corners[c].second += o.corners[c].second;
  }
  total += o.total;
}

void YieldReport::finalize() {
  worst_corner = -1;
  double worst_rate = 2.0;  // any real rate beats this
  for (size_t c = 0; c < corners.size(); ++c) {
    if (corners[c].second.samples == 0) continue;
    const double rate = corners[c].second.pass_rate();
    if (rate < worst_rate) {  // strict: lowest index wins ties
      worst_rate = rate;
      worst_corner = static_cast<int>(c);
    }
  }
}

const std::string& YieldReport::worst_corner_name() const {
  static const std::string kNone = "";
  if (worst_corner < 0 || size_t(worst_corner) >= corners.size()) return kNone;
  return corners[size_t(worst_corner)].first;
}

namespace {

void put_num(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

}  // namespace

std::string YieldReport::to_json() const {
  const WilsonInterval w = ci();
  std::string out = "{\"yield\":";
  put_num(out, yield());
  out += ",\"ci_lo\":";
  put_num(out, w.lo);
  out += ",\"ci_hi\":";
  put_num(out, w.hi);
  out += ",\"samples\":" + std::to_string(total.samples);
  out += ",\"passes\":" + std::to_string(total.pass);
  out += ",\"worst_corner\":\"" + worst_corner_name() + "\"";
  out += ",\"corners\":[";
  for (size_t c = 0; c < corners.size(); ++c) {
    if (c > 0) out += ',';
    const CriteriaCounts& k = corners[c].second;
    out += "{\"name\":\"" + corners[c].first + "\",\"samples\":" +
           std::to_string(k.samples) + ",\"pass\":" + std::to_string(k.pass) +
           ",\"functional\":" + std::to_string(k.functional) +
           ",\"gain\":" + std::to_string(k.gain) +
           ",\"ugf\":" + std::to_string(k.ugf) +
           ",\"phase_margin\":" + std::to_string(k.phase_margin) +
           ",\"pass_rate\":";
    put_num(out, k.pass_rate());
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace ape::stat
