#pragma once
/// \file yield.h
/// Yield accounting for corner sweeps and Monte-Carlo runs (DESIGN.md
/// section 12): per-criterion pass counts per corner, pooled yield with
/// a Wilson score confidence interval, and worst-corner identification.
///
/// Everything here is plain integer/double bookkeeping over outcomes
/// the sweep runner (runtime/sweep.h) computed — aggregation happens in
/// job/corner/sample index order, so reports are bit-identical at any
/// thread count.

#include <cstdint>
#include <string>
#include <vector>

namespace ape::stat {

/// Pass/fail of one (design, corner, sample) evaluation point. The
/// overall pass requires a functional bias point and the gain/UGF
/// criteria (the same 0.9x acceptance band the synthesis diagnosis
/// uses); phase margin is tracked per criterion but does not gate pass
/// — an opamp with soft margin still works, it just rings.
struct PointOutcome {
  bool evaluated = false;   ///< evaluation completed (false: it threw)
  bool functional = false;  ///< bias point exists
  bool gain_ok = false;     ///< gain >= 0.9 x spec
  bool ugf_ok = false;      ///< UGF >= 0.9 x spec
  bool pm_ok = false;       ///< phase margin >= 45 deg (informational)

  bool pass() const { return evaluated && functional && gain_ok && ugf_ok; }
};

/// Per-criterion pass counters over a set of points.
struct CriteriaCounts {
  long samples = 0;
  long functional = 0;
  long gain = 0;
  long ugf = 0;
  long phase_margin = 0;
  long pass = 0;

  void add(const PointOutcome& p);
  CriteriaCounts& operator+=(const CriteriaCounts& o);
  double pass_rate() const {
    return samples > 0 ? double(pass) / double(samples) : 0.0;
  }
};

/// Wilson score interval for a binomial proportion — well-behaved at
/// small n and at pass rates near 0/1, unlike the normal approximation.
struct WilsonInterval {
  double lo = 0.0;
  double hi = 1.0;
};

/// The interval for \p passes successes out of \p samples at normal
/// quantile \p z (default: 95% two-sided). samples == 0 returns the
/// vacuous [0, 1].
WilsonInterval wilson_interval(long passes, long samples, double z = 1.96);

/// Yield over a (corner x sample) grid. Construct with the corner names
/// (slot order = CornerSet order), feed points with add(), then
/// finalize() to compute the worst corner.
struct YieldReport {
  /// Per-corner accounting; corners[c].first is the corner name.
  std::vector<std::pair<std::string, CriteriaCounts>> corners;
  CriteriaCounts total;
  /// Index of the corner with the lowest pass rate (lowest index wins
  /// ties — deterministic); -1 until finalize() or when empty.
  int worst_corner = -1;

  explicit YieldReport(const std::vector<std::string>& corner_names = {});

  /// Record one point under corner slot \p corner_index.
  void add(size_t corner_index, const PointOutcome& p);

  /// Pool another report with the same corner layout (throws SpecError
  /// on a layout mismatch). Used for the run-level aggregate.
  void merge(const YieldReport& o);

  /// Compute worst_corner from the counters.
  void finalize();

  double yield() const { return total.pass_rate(); }
  WilsonInterval ci(double z = 1.96) const {
    return wilson_interval(total.pass, total.samples, z);
  }
  const std::string& worst_corner_name() const;

  /// Compact JSON object ({"yield":..,"ci_lo":..,...,"corners":[...]}).
  std::string to_json() const;
};

}  // namespace ape::stat
