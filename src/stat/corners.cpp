#include "src/stat/corners.h"

#include "src/util/error.h"

namespace ape::stat {
namespace {

// The classic digital-flow skew magnitudes, reused for the analog cards:
// +/-100 mV threshold shift and +/-10% transconductance parameter.
constexpr double kDvth = 0.1;      // [V], + = slow (harder to turn on)
constexpr double kKpFast = 1.1;
constexpr double kKpSlow = 0.9;
constexpr double kVddHigh = 1.1;
constexpr double kVddLow = 0.9;
constexpr double kHotC = 125.0;
constexpr double kColdC = -40.0;
constexpr double kNomC = 27.0;

est::CornerDelta make(const char* name, double n_dvth, double p_dvth,
                      double n_kp, double p_kp, double vdd, double temp) {
  est::CornerDelta d;
  d.name = name;
  d.nmos_dvth = n_dvth;
  d.pmos_dvth = p_dvth;
  d.nmos_kp_scale = n_kp;
  d.pmos_kp_scale = p_kp;
  d.vdd_scale = vdd;
  d.temp_c = temp;
  return d;
}

const std::vector<est::CornerDelta>& catalog() {
  // Fast skew = lower |Vth| + higher K'; slow = the opposite. The
  // worst-speed family runs hot at low vdd (least drive), worst-power
  // runs cold at high vdd (most drive/leakage headroom).
  static const std::vector<est::CornerDelta> k = {
      make("tm", 0.0, 0.0, 1.0, 1.0, 1.0, kNomC),
      make("wp", -kDvth, -kDvth, kKpFast, kKpFast, kVddHigh, kColdC),
      make("ws", kDvth, kDvth, kKpSlow, kKpSlow, kVddLow, kHotC),
      make("wo", -kDvth, kDvth, kKpFast, kKpSlow, kVddLow, kHotC),
      make("wz", kDvth, -kDvth, kKpSlow, kKpFast, kVddLow, kHotC),
      make("hot", 0.0, 0.0, 1.0, 1.0, 1.0, kHotC),
      make("cold", 0.0, 0.0, 1.0, 1.0, 1.0, kColdC),
  };
  return k;
}

}  // namespace

CornerSet CornerSet::all() {
  CornerSet s;
  s.corners_ = catalog();
  return s;
}

CornerSet CornerSet::nominal() {
  CornerSet s;
  s.corners_.push_back(catalog()[0]);
  return s;
}

CornerSet CornerSet::parse(const std::string& selection) {
  if (selection.empty() || selection == "all") return all();
  CornerSet s;
  size_t start = 0;
  while (start <= selection.size()) {
    size_t comma = selection.find(',', start);
    if (comma == std::string::npos) comma = selection.size();
    const std::string name = selection.substr(start, comma - start);
    if (name.empty()) {
      throw SpecError("CornerSet::parse: empty corner name in '" + selection +
                      "'");
    }
    const est::CornerDelta* found = nullptr;
    for (const auto& d : catalog()) {
      if (d.name == name) {
        found = &d;
        break;
      }
    }
    if (found == nullptr) {
      throw SpecError("CornerSet::parse: unknown corner '" + name +
                      "' (known: tm,wp,ws,wo,wz,hot,cold)");
    }
    if (s.index_of(name) >= 0) {
      throw SpecError("CornerSet::parse: duplicate corner '" + name + "'");
    }
    s.corners_.push_back(*found);
    start = comma + 1;
  }
  return s;
}

int CornerSet::index_of(const std::string& name) const {
  for (size_t i = 0; i < corners_.size(); ++i) {
    if (corners_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<est::Process> CornerSet::realize(const est::Process& base) const {
  std::vector<est::Process> out;
  out.reserve(corners_.size());
  for (const auto& d : corners_) out.push_back(base.corner(d));
  return out;
}

std::string CornerSet::names() const {
  std::string out;
  for (const auto& d : corners_) {
    if (!out.empty()) out += ',';
    out += d.name;
  }
  return out;
}

}  // namespace ape::stat
