#include <cmath>
#include <string>

#include "src/estimator/components.h"
#include "src/util/error.h"
#include "src/util/units.h"

namespace ape::est {
namespace {

std::string fmt(double v) { return units::format_eng(v, 6); }

}  // namespace

Testbench ComponentDesign::testbench(const Process& proc, TbMode mode) const {
  NetlistBuilder nb(std::string("APE testbench: ") + to_string(spec.kind));
  nb.models(proc);
  nb.vsource("Vdd", "vdd", "0", "DC " + fmt(proc.vdd));

  Testbench tb;
  tb.supply_source = "Vdd";
  tb.cload = spec.cload;

  auto t = [&](const std::string& role) -> const TransistorDesign& {
    for (size_t i = 0; i < roles.size(); ++i) {
      if (roles[i] == role) return transistors[i];
    }
    throw LookupError("testbench: missing role " + role);
  };

  switch (spec.kind) {
    case ComponentKind::DcVolt: {
      nb.mosfet(proc, t("pdiode"), "out", "out", "vdd", "vdd");
      nb.mosfet(proc, t("ndiode"), "out", "out", "0", "0");
      tb.out_node = "out";
      break;
    }
    case ComponentKind::CurrentMirror: {
      nb.isource("Iref", "vdd", "ref", "DC " + fmt(spec.ibias));
      nb.mosfet(proc, t("ref"), "ref", "ref", "0", "0");
      nb.mosfet(proc, t("out"), "out", "ref", "0", "0");
      nb.vsource("Vout", "out", "0", "DC " + fmt(0.5 * proc.vdd) + " AC 1");
      tb.out_node = "out";
      tb.in_source = "Vout";
      break;
    }
    case ComponentKind::WilsonSource: {
      nb.isource("Iref", "vdd", "a", "DC " + fmt(spec.ibias));
      nb.mosfet(proc, t("m1_in"), "a", "b", "0", "0");
      nb.mosfet(proc, t("m2_diode"), "b", "b", "0", "0");
      nb.mosfet(proc, t("m3_casc"), "out", "a", "b", "0");
      nb.vsource("Vout", "out", "0", "DC " + fmt(0.5 * proc.vdd) + " AC 1");
      tb.out_node = "out";
      tb.in_source = "Vout";
      break;
    }
    case ComponentKind::CascodeSource: {
      nb.isource("Iref", "vdd", "g2", "DC " + fmt(spec.ibias));
      nb.mosfet(proc, t("refc"), "g2", "g2", "g1", "0");
      nb.mosfet(proc, t("ref"), "g1", "g1", "0", "0");
      nb.mosfet(proc, t("outc"), "out", "g2", "x", "0");
      nb.mosfet(proc, t("out"), "x", "g1", "0", "0");
      nb.vsource("Vout", "out", "0", "DC " + fmt(0.5 * proc.vdd) + " AC 1");
      tb.out_node = "out";
      tb.in_source = "Vout";
      break;
    }
    case ComponentKind::GainNmos: {
      nb.vsource("Vin", "in", "0", "DC " + fmt(input_dc) + " AC 1");
      nb.mosfet(proc, t("driver"), "out", "in", "0", "0");
      nb.mosfet(proc, t("load"), "vdd", "vdd", "out", "0");
      nb.capacitor("out", "0", spec.cload);
      tb.out_node = "out";
      tb.in_source = "Vin";
      break;
    }
    case ComponentKind::GainCmos:
    case ComponentKind::GainCmosHalf: {
      nb.vsource("Vin", "in", "0", "DC " + fmt(input_dc) + " AC 1");
      nb.mosfet(proc, t("driver"), "out", "in", "0", "0");
      nb.mosfet(proc, t("load"), "out", "out", "vdd", "vdd");
      nb.capacitor("out", "0", spec.cload);
      tb.out_node = "out";
      tb.in_source = "Vin";
      break;
    }
    case ComponentKind::Follower: {
      nb.vsource("Vin", "in", "0", "DC " + fmt(input_dc) + " AC 1");
      nb.mosfet(proc, t("sf"), "vdd", "in", "out", "0");
      nb.isource("Irefb", "vdd", "rb", "DC " + fmt(spec.ibias / 5.0));
      nb.mosfet(proc, t("sink_ref"), "rb", "rb", "0", "0");
      nb.mosfet(proc, t("sink"), "out", "rb", "0", "0");
      nb.capacitor("out", "0", spec.cload);
      tb.out_node = "out";
      tb.in_source = "Vin";
      break;
    }
    case ComponentKind::DiffNmos: {
      const bool cm = (mode == TbMode::CommonMode);
      nb.vsource("Vinp", "inp", "0",
                 "DC " + fmt(input_dc) + (cm ? " AC 1" : " AC 0.5"));
      nb.vsource("Vinn", "inn", "0",
                 "DC " + fmt(input_dc) + (cm ? " AC 1" : " AC -0.5"));
      nb.mosfet(proc, t("pair_p"), "o1", "inp", "t", "0");
      nb.mosfet(proc, t("pair_n"), "o2", "inn", "t", "0");
      nb.mosfet(proc, t("load_a"), "vdd", "vdd", "o1", "0");
      nb.mosfet(proc, t("load_b"), "vdd", "vdd", "o2", "0");
      nb.isource("Itail", "vdd", "tg", "DC " + fmt(spec.ibias));
      nb.mosfet(proc, t("tail_ref"), "tg", "tg", "0", "0");
      nb.mosfet(proc, t("tail"), "t", "tg", "0", "0");
      nb.capacitor("o1", "0", spec.cload);
      nb.capacitor("o2", "0", spec.cload);
      // Differential probe o1 - o2 keeps the paper's negative-gain sense
      // (same-side input/output). Common-mode runs probe one side only:
      // the symmetric differential component cancels exactly.
      tb.out_node = "o1";
      tb.out_node2 = cm ? "" : "o2";
      tb.in_source = "Vinp";
      break;
    }
    case ComponentKind::DiffCmos: {
      const bool cm = (mode == TbMode::CommonMode);
      nb.vsource("Vinp", "inp", "0", "DC " + fmt(input_dc) + " AC 1");
      nb.vsource("Vinn", "inn", "0",
                 "DC " + fmt(input_dc) + (cm ? " AC 1" : ""));
      nb.mosfet(proc, t("pair_p"), "n1", "inp", "t", "0");
      nb.mosfet(proc, t("pair_n"), "out", "inn", "t", "0");
      nb.mosfet(proc, t("load_a"), "n1", "n1", "vdd", "vdd");
      nb.mosfet(proc, t("load_b"), "out", "n1", "vdd", "vdd");
      nb.isource("Itail", "vdd", "tg", "DC " + fmt(spec.ibias));
      nb.mosfet(proc, t("tail_ref"), "tg", "tg", "0", "0");
      nb.mosfet(proc, t("tail"), "t", "tg", "0", "0");
      nb.capacitor("out", "0", spec.cload);
      tb.out_node = "out";
      tb.in_source = "Vinp";
      break;
    }
  }

  tb.netlist = nb.str();
  return tb;
}

}  // namespace ape::est
