#pragma once
/// \file opamp.h
/// Level 3 of the APE hierarchy: operational amplifiers (paper section 4,
/// item 3, Tables 1/3/4).
///
/// The general opamp template follows the paper's three-stage structure:
/// (1) differential input amplifier, (2) differential-to-single-ended
/// conversion + gain stage, (3) optional output buffer for heavy loads -
/// a two-stage Miller-compensated CMOS opamp with an NMOS source-follower
/// buffer. The tail current source comes from the level-2 library in
/// either "Mirror" (simple) or "Wilson" flavour, matching Table 1's
/// CurrSrc column.

#include <string>
#include <vector>

#include "src/estimator/components.h"
#include "src/estimator/netlist.h"
#include "src/estimator/process.h"
#include "src/estimator/transistor.h"

namespace ape::est {

/// Tail current-source topology (Table 1 "CurrSrc" column).
enum class CurrentSourceKind { Mirror, Wilson };

/// Requirements for an operational amplifier (Table 1 columns).
struct OpAmpSpec {
  double gain = 200.0;       ///< DC differential gain target (absolute)
  double ugf_hz = 1e6;       ///< unity-gain frequency target [Hz]
  double ibias = 1e-6;       ///< available reference current [A]
  double cload = 10e-12;     ///< load capacitance [F]
  CurrentSourceKind source = CurrentSourceKind::Mirror;
  bool buffer = false;       ///< include the output source-follower
  double zout = 0.0;         ///< output impedance target when buffered [ohm]
  double area_budget = 0.0;  ///< informational gate-area budget [m^2] (0 = none)
};

/// Estimated opamp performance (Table 3 columns).
struct OpAmpPerf {
  double gain = 0.0;        ///< DC differential gain
  double ugf_hz = 0.0;      ///< unity-gain frequency [Hz]
  double phase_margin = 0.0;///< [deg]
  double dc_power = 0.0;    ///< [W]
  double gate_area = 0.0;   ///< [m^2]
  double ibias = 0.0;       ///< tail current [A]
  double zout = 0.0;        ///< open-loop output impedance [ohm]
  double cmrr_db = 0.0;
  double slew = 0.0;        ///< [V/s]
  double input_noise_v2 = 0.0;  ///< input-referred white noise PSD [V^2/Hz]
  double cc = 0.0;          ///< compensation capacitor [F]
  double rz = 0.0;          ///< zero-nulling resistor [ohm]
  double input_cm = 0.0;    ///< input common-mode bias for testbenches [V]
};

/// Testbench flavours an opamp design can emit.
enum class OpAmpTb {
  OpenLoop,    ///< AC differential drive, inductive DC feedback
  CommonMode,  ///< AC common-mode drive (CMRR)
  ZoutProbe,   ///< AC current injection at the output
  UnityStep,   ///< unity-gain transient step (slew rate)
};

/// A fully sized opamp.
struct OpAmpDesign {
  OpAmpSpec spec;
  OpAmpPerf perf;
  std::vector<TransistorDesign> transistors;
  std::vector<std::string> roles;

  /// Emit a verification testbench of the requested flavour.
  Testbench testbench(const Process& proc, OpAmpTb mode = OpAmpTb::OpenLoop) const;

  /// Emit the bare opamp as a reusable subcircuit into \p nb.
  /// Nodes: \p inp, \p inn, \p out, \p vdd_node; the bias reference
  /// current source is included (from vdd to the bias node).
  /// \p prefix uniquifies internal node names.
  void emit(NetlistBuilder& nb, const Process& proc, const std::string& prefix,
            const std::string& inp, const std::string& inn,
            const std::string& out, const std::string& vdd_node) const;
};

/// Sizes two-stage (optionally buffered) opamps against a process.
class OpAmpEstimator {
public:
  explicit OpAmpEstimator(const Process& proc)
      : proc_(proc), xtor_(proc), comp_(proc) {}

  /// Size an opamp and estimate its performance.
  /// Throws SpecError when the (gain, UGF, Ibias, CL) combination is
  /// infeasible in this process.
  OpAmpDesign estimate(const OpAmpSpec& spec) const;

  const Process& process() const { return proc_; }

private:
  /// One sizing pass with the first-stage gm scaled by \p ugf_margin;
  /// estimate() iterates the margin until the parasitic-corrected UGF
  /// lands on the spec.
  OpAmpDesign build(const OpAmpSpec& spec, double ugf_margin) const;

  const Process& proc_;
  TransistorEstimator xtor_;
  ComponentEstimator comp_;
};

}  // namespace ape::est
