#pragma once
/// \file process.h
/// Fabrication-process database for the estimator: the NMOS/PMOS model
/// cards plus supply and geometry limits. This is the "technology process
/// parameters and SPICE models" input at the bottom of the APE hierarchy
/// (paper section 4, item 1).

#include <string>

#include "src/spice/mos_model.h"

namespace ape::est {

/// A CMOS process: one NMOS and one PMOS card plus design limits.
struct Process {
  std::string name = "generic";
  spice::MosModelCard nmos;
  spice::MosModelCard pmos;
  double vdd = 5.0;      ///< positive supply [V]
  double vss = 0.0;      ///< negative supply [V]
  double lmin = 1.2e-6;  ///< minimum drawn channel length [m]
  double wmin = 2.0e-6;  ///< minimum drawn width [m]
  double wmax = 2.0e-3;  ///< maximum practical width [m]

  /// Model card for a device type.
  const spice::MosModelCard& card(spice::MosType t) const {
    return t == spice::MosType::Nmos ? nmos : pmos;
  }

  /// Representative 1.2 um-class process used throughout the benches.
  /// The paper does not publish its process card; this one is chosen so
  /// sized circuits land in the same order of magnitude as the paper's
  /// area/power numbers (see DESIGN.md section 4).
  static Process default_1u2();

  /// Same process expressed as LEVEL 3 cards (empirical short-channel
  /// corrections) - used by the model-level ablation bench.
  static Process default_1u2_level3();

  /// Same process expressed as simplified BSIM1 (LEVEL 4) cards: the
  /// flat-band/K1 parameters are derived from the LEVEL 1 card so the
  /// long-channel behaviour matches, with mild vertical-field and
  /// velocity-saturation terms on top.
  static Process default_1u2_bsim();

  /// Build a process from two parsed .model cards.
  static Process from_cards(spice::MosModelCard n, spice::MosModelCard p,
                            double vdd = 5.0);
};

}  // namespace ape::est
