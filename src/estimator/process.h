#pragma once
/// \file process.h
/// Fabrication-process database for the estimator: the NMOS/PMOS model
/// cards plus supply and geometry limits. This is the "technology process
/// parameters and SPICE models" input at the bottom of the APE hierarchy
/// (paper section 4, item 1).

#include <string>

#include "src/spice/mos_model.h"

namespace ape::est {

/// A PVT corner recipe: device-skew deltas plus supply and temperature
/// conditions, applied to a base Process by Process::corner(). The
/// threshold deltas are expressed in the *magnitude* frame (a positive
/// dvth makes the device harder to turn on for both polarities); K'
/// scales are multiplicative. Temperature effects are baked into the
/// derived cards with the standard first-order laws: mobility (and
/// hence K') scales as (T/Tnom)^-1.5 and |Vth| drops ~2 mV/K above
/// Tnom = 27 C (see DESIGN.md section 12).
struct CornerDelta {
  std::string name = "tm";   ///< corner id, folded into Process::variant
  double nmos_dvth = 0.0;    ///< added to |Vth| of the NMOS card [V]
  double pmos_dvth = 0.0;    ///< added to |Vth| of the PMOS card [V]
  double nmos_kp_scale = 1.0;  ///< multiplies NMOS K' (and BSIM MUZ)
  double pmos_kp_scale = 1.0;  ///< multiplies PMOS K' (and BSIM MUZ)
  double vdd_scale = 1.0;    ///< multiplies the positive supply
  double temp_c = 27.0;      ///< junction temperature [Celsius]
};

/// Shift one model card in the magnitude frame: |Vth| += dvth (sign-aware
/// for PMOS, and via VFB for BSIM/LEVEL 4 cards where VTO is unused) and
/// K' *= kp_scale (via MUZ for LEVEL 4). Shared by corner derivation and
/// Monte-Carlo mismatch sampling (src/stat/mismatch.h) so both perturb
/// cards identically.
void perturb_card(spice::MosModelCard& card, double dvth, double kp_scale);

/// A CMOS process: one NMOS and one PMOS card plus design limits.
struct Process {
  std::string name = "generic";
  spice::MosModelCard nmos;
  spice::MosModelCard pmos;
  double vdd = 5.0;      ///< positive supply [V]
  double vss = 0.0;      ///< negative supply [V]
  double lmin = 1.2e-6;  ///< minimum drawn channel length [m]
  double wmin = 2.0e-6;  ///< minimum drawn width [m]
  double wmax = 2.0e-3;  ///< maximum practical width [m]
  /// Junction temperature the cards describe [Celsius]. Corner/mismatch
  /// derivation *bakes* temperature scaling into the card values; this
  /// field records the condition so cache keys and fingerprints
  /// distinguish otherwise-identical cards (see runtime/cache.cpp).
  double temp_c = 27.0;
  /// Scenario identity: "" for the nominal card set, else the corner id
  /// ("ws", "wp", ...) optionally suffixed with a Monte-Carlo sample tag
  /// ("ws/mc17"). Part of the cache/quarantine fingerprint so derived
  /// processes never collide with the nominal one even when a zero-width
  /// perturbation leaves every numeric field unchanged.
  std::string variant;

  /// Model card for a device type.
  const spice::MosModelCard& card(spice::MosType t) const {
    return t == spice::MosType::Nmos ? nmos : pmos;
  }

  /// Representative 1.2 um-class process used throughout the benches.
  /// The paper does not publish its process card; this one is chosen so
  /// sized circuits land in the same order of magnitude as the paper's
  /// area/power numbers (see DESIGN.md section 4).
  static Process default_1u2();

  /// Same process expressed as LEVEL 3 cards (empirical short-channel
  /// corrections) - used by the model-level ablation bench.
  static Process default_1u2_level3();

  /// Same process expressed as simplified BSIM1 (LEVEL 4) cards: the
  /// flat-band/K1 parameters are derived from the LEVEL 1 card so the
  /// long-channel behaviour matches, with mild vertical-field and
  /// velocity-saturation terms on top.
  static Process default_1u2_bsim();

  /// Build a process from two parsed .model cards.
  static Process from_cards(spice::MosModelCard n, spice::MosModelCard p,
                            double vdd = 5.0);

  /// Derive the PVT-corner process described by \p d: skew deltas and
  /// temperature scaling baked into fresh card copies, vdd scaled,
  /// temp_c/variant stamped. Pure — the base process is untouched — and
  /// an all-defaults CornerDelta changes only temp-neutral identity
  /// fields (variant), which is exactly what the cache-key regression
  /// test relies on.
  Process corner(const CornerDelta& d) const;
};

}  // namespace ape::est
