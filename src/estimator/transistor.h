#pragma once
/// \file transistor.h
/// Level 1 of the APE hierarchy: CMOS transistor sizing and small-signal
/// estimation (paper section 4, "CMOS Transistor Models", eqs. 1-4).
///
/// A transistor is sized from an electrical requirement - (gm, Id) or
/// (Id, Vov) - at a given bias, and saved as an immutable object carrying
/// both the size and all derived performance parameters, exactly the
/// "sized transistor saved as an object" of the paper.

#include "src/estimator/process.h"
#include "src/spice/mos_model.h"

namespace ape::est {

/// A sized transistor with its bias point and small-signal parameters.
struct TransistorDesign {
  spice::MosType type = spice::MosType::Nmos;
  double w = 0.0;     ///< drawn width [m]
  double l = 0.0;     ///< drawn length [m]
  // Bias point (NMOS-normalized: all positive in forward saturation).
  double id = 0.0;    ///< drain current [A]
  double vgs = 0.0;
  double vds = 0.0;
  double vbs = 0.0;
  double vth = 0.0;
  double vdsat = 0.0;
  // Small-signal parameters.
  double gm = 0.0;
  double gds = 0.0;
  double gmb = 0.0;
  // Capacitances at the bias point [F].
  double cgs = 0.0;
  double cgd = 0.0;
  double cgb = 0.0;
  double cdb = 0.0;
  double csb = 0.0;

  /// Gate area [m^2]; the paper reports areas in um^2 (multiply by 1e12).
  double gate_area() const { return w * l; }
  /// Total gate capacitance [F].
  double cg_total() const { return cgs + cgd + cgb; }
  /// Self-gain gm/gds.
  double self_gain() const { return gds > 0.0 ? gm / gds : 0.0; }
};

/// Sizes transistors against a Process. All entry points return a fully
/// populated TransistorDesign or throw ape::SpecError when the request is
/// infeasible in this process (e.g. W below minimum or Vov <= 0).
class TransistorEstimator {
public:
  explicit TransistorEstimator(const Process& proc) : proc_(proc) {}

  /// Size for a target (gm, Id) pair - the paper's flagship example:
  /// "if a transistor is specified by a given transconductance gm and a
  /// drain current, APE estimates the transistor size, the output drain
  /// conductance and the parasite capacitances."
  ///
  /// Level-1 closed form (paper eq. 2): W/L = gm^2 / (2 KP Id), then a
  /// numeric refinement against the full model card so LEVEL 2/3 cards
  /// size correctly too.
  ///
  /// \param vds,vbs bias assumption (NMOS-normalized, defaults mid-rail).
  TransistorDesign size_for_gm_id(spice::MosType type, double gm, double id,
                                  double vds = -1.0, double vbs = 0.0,
                                  double l = -1.0) const;

  /// Size for a target (Id, Vov) pair (used when a component dictates the
  /// overdrive, e.g. matched mirrors).
  TransistorDesign size_for_id_vov(spice::MosType type, double id, double vov,
                                   double vds = -1.0, double vbs = 0.0,
                                   double l = -1.0) const;

  /// Evaluate a known geometry at a bias (no sizing): the "forward" mode.
  TransistorDesign evaluate(spice::MosType type, double w, double l, double vgs,
                            double vds, double vbs = 0.0) const;

  /// Gate-source voltage that conducts \p id with geometry (w, l) at the
  /// given (vds, vbs); solved by bisection on the model card.
  double vgs_for_id(spice::MosType type, double w, double l, double id,
                    double vds, double vbs = 0.0) const;

  const Process& process() const { return proc_; }

private:
  TransistorDesign finish(spice::MosType type, double w, double l, double vgs,
                          double vds, double vbs) const;

  const Process& proc_;
};

}  // namespace ape::est
