#pragma once
/// \file modules.h
/// Level 4 of the APE hierarchy: the analog module library (paper section
/// 4, item 4, and Table 5). Modules are built from level-3 opamps plus
/// passives; their performance estimates combine the ideal RC behaviour
/// with the sized opamp's non-ideal attributes (finite gain, UGF, Rout,
/// slew), evaluated on a VCVS macromodel - the numeric form of the
/// paper's "equations which relate the ideal behavior of the component
/// with the non-ideal characteristics of the opamp".
///
/// Realization notes (documented substitutions, see DESIGN.md):
///  * the audio amplifier is realized as a resistive-feedback
///    non-inverting stage (a two-stage opamp cannot hold an open-loop
///    gain as low as 100 in a process with healthy Early voltage);
///  * the band-pass biquad uses the multiple-feedback (MFB) single-amp
///    realization; the low-pass uses genuine Sallen-Key stages;
///  * module testbenches use an ideal mid-rail reference source where a
///    production design would drop in the level-2 DCVolt component.

#include <string>
#include <vector>

#include "src/estimator/netlist.h"
#include "src/estimator/opamp.h"
#include "src/estimator/process.h"

namespace ape::est {

enum class ModuleKind {
  AudioAmp,       ///< gain-of-N audio amplifier (non-inverting)
  SampleHold,     ///< switch + hold cap + gain-of-2 buffer
  FlashAdc,       ///< N-bit flash converter (ladder + comparators)
  LowPassFilter,  ///< Sallen-Key Butterworth low-pass (even order)
  BandPassFilter, ///< MFB band-pass biquad
  InvertingAmp,   ///< R2/R1 inverting amplifier
  Integrator,     ///< lossy RC integrator (finite DC gain)
  Comparator,     ///< open-loop comparator with delay budget
  Adder,          ///< two-input inverting summer
  R2RDac,         ///< N-bit R-2R ladder DAC with output buffer
};

const char* to_string(ModuleKind kind);

/// Module requirements (Table 5 columns 1-3).
struct ModuleSpec {
  ModuleKind kind = ModuleKind::AudioAmp;
  double gain = 100.0;    ///< closed-loop gain (amp / S&H)
  double bw_hz = 20e3;    ///< bandwidth (amp / S&H)
  double f0_hz = 1e3;     ///< corner / center frequency (filters)
  int order = 4;          ///< filter order (2/4), converter bits, or adder inputs
  double delay_s = 5e-6;  ///< conversion/response delay budget (ADC, comparator, DAC)
  double slew = 1e4;      ///< slew-rate requirement [V/s] (S&H)
  double area_budget = 0.0;  ///< informational [m^2]
};

/// Estimated module performance (Table 5 column 5).
struct ModulePerf {
  double gain = 0.0;       ///< passband / DC gain
  double bw_hz = 0.0;      ///< -3 dB bandwidth (amp / S&H / BPF)
  double f3db_hz = 0.0;    ///< low-pass corner
  double f20db_hz = 0.0;   ///< low-pass -20 dB frequency
  double f0_hz = 0.0;      ///< band-pass center
  double delay_s = 0.0;    ///< ADC/comparator/DAC response delay
  double slew = 0.0;       ///< [V/s]
  double gate_area = 0.0;  ///< [m^2]
  double dc_power = 0.0;   ///< [W]
  double f_unity_hz = 0.0; ///< integrator unity-gain frequency
  double lsb_v = 0.0;      ///< DAC step size [V]
};

/// One passive element of a sized module (for reporting).
struct PassiveValue {
  std::string name;
  double value = 0.0;  ///< ohm or farad depending on the name prefix
};

/// A sized analog module.
struct ModuleDesign {
  ModuleSpec spec;
  ModulePerf perf;
  std::vector<OpAmpDesign> opamps;        ///< constituent opamps
  std::vector<TransistorDesign> switches; ///< S&H switch etc.
  std::vector<PassiveValue> passives;
  double vref = 0.0;                      ///< mid-rail reference used [V]

  /// Emit the full transistor-level verification testbench.
  Testbench testbench(const Process& proc) const;
};

/// VCVS-macromodel testbench of a module: the same wiring as the full
/// transistor testbench but with each opamp replaced by its level-3
/// attributes (gain, UGF, Zout). This is the estimator's own evaluation
/// view; the synthesis engine reuses it as a fast cost evaluator.
Testbench macro_testbench(const ModuleDesign& d, const Process& proc);

/// Sizes analog modules against a process.
class ModuleEstimator {
public:
  explicit ModuleEstimator(const Process& proc)
      : proc_(proc), xtor_(proc), opamp_(proc) {}

  /// Size a module and estimate its performance.
  ModuleDesign estimate(const ModuleSpec& spec) const;

  const Process& process() const { return proc_; }

private:
  ModuleDesign audio_amp(const ModuleSpec& s) const;
  ModuleDesign sample_hold(const ModuleSpec& s) const;
  ModuleDesign flash_adc(const ModuleSpec& s) const;
  ModuleDesign low_pass(const ModuleSpec& s) const;
  ModuleDesign band_pass(const ModuleSpec& s) const;
  ModuleDesign inverting_amp(const ModuleSpec& s) const;
  ModuleDesign integrator(const ModuleSpec& s) const;
  ModuleDesign comparator(const ModuleSpec& s) const;
  ModuleDesign adder(const ModuleSpec& s) const;
  ModuleDesign r2r_dac(const ModuleSpec& s) const;

  const Process& proc_;
  TransistorEstimator xtor_;
  OpAmpEstimator opamp_;
};

}  // namespace ape::est
