#include <algorithm>
#include <cmath>
#include <string>

#include "src/estimator/opamp.h"
#include "src/util/error.h"
#include "src/util/units.h"

namespace ape::est {
namespace {

std::string fmt(double v) { return units::format_eng(v, 6); }

}  // namespace

void OpAmpDesign::emit(NetlistBuilder& nb, const Process& proc,
                       const std::string& prefix, const std::string& inp,
                       const std::string& inn, const std::string& out,
                       const std::string& vdd_node) const {
  auto t = [&](const std::string& role) -> const TransistorDesign* {
    for (size_t i = 0; i < roles.size(); ++i) {
      if (roles[i] == role) return &transistors[i];
    }
    return nullptr;
  };
  auto need = [&](const std::string& role) -> const TransistorDesign& {
    const TransistorDesign* p = t(role);
    if (p == nullptr) throw LookupError("opamp emit: missing role " + role);
    return *p;
  };

  const std::string n1 = prefix + "_n1";
  const std::string o1 = prefix + "_o1";
  const std::string tail = prefix + "_tail";
  const std::string tailx = prefix + "_tailx";
  const std::string zx = prefix + "_zx";
  const bool buffered = (t("m9") != nullptr);
  const std::string out2 = buffered ? prefix + "_out2" : out;

  nb.comment("opamp " + prefix + ": two-stage Miller" +
             std::string(buffered ? " + buffer" : ""));

  // Bias / tail current source.
  const bool wilson = (t("w_in") != nullptr);
  std::string bias_gate;
  if (wilson) {
    const std::string wa = prefix + "_wa";
    const std::string wb = prefix + "_wb";
    nb.isource("Ib" + prefix, vdd_node, wa, "DC " + fmt(spec.ibias));
    nb.mosfet(proc, need("w_in"), wa, wb, "0", "0");
    nb.mosfet(proc, need("w_diode"), wb, wb, "0", "0");
    nb.mosfet(proc, need("w_casc"), tailx, wa, wb, "0");
    bias_gate = wb;
  } else {
    const std::string bn = prefix + "_bn";
    nb.isource("Ib" + prefix, vdd_node, bn, "DC " + fmt(spec.ibias));
    nb.mosfet(proc, need("m8"), bn, bn, "0", "0");
    nb.mosfet(proc, need("m5"), tailx, bn, "0", "0");
    bias_gate = bn;
  }
  // Zero-volt tail current probe.
  nb.vsource("Vtail" + prefix, tailx, tail, "DC 0");

  // First stage: M1 gate is the inverting input (the mirror diode hangs on
  // its drain; the second stage inverts once more).
  nb.mosfet(proc, need("m1"), n1, inn, tail, "0");
  nb.mosfet(proc, need("m2"), o1, inp, tail, "0");
  nb.mosfet(proc, need("m3"), n1, n1, vdd_node, vdd_node);
  nb.mosfet(proc, need("m4"), o1, n1, vdd_node, vdd_node);

  // Second stage + Miller compensation with zero-nulling resistor.
  nb.mosfet(proc, need("m6"), out2, o1, vdd_node, vdd_node);
  nb.mosfet(proc, need("m7"), out2, bias_gate, "0", "0");
  nb.resistor(o1, zx, std::max(perf.rz, 1.0));
  nb.capacitor(zx, out2, perf.cc);

  if (buffered) {
    nb.mosfet(proc, need("m9"), vdd_node, out2, out, "0");
    nb.mosfet(proc, need("m10"), out, bias_gate, "0", "0");
  }
}

Testbench OpAmpDesign::testbench(const Process& proc, OpAmpTb mode) const {
  NetlistBuilder nb("APE opamp testbench");
  nb.models(proc);
  nb.vsource("Vdd", "vdd", "0", "DC " + fmt(proc.vdd));

  Testbench tb;
  tb.supply_source = "Vdd";
  tb.out_node = "out";
  tb.cload = spec.cload;
  const double cm = perf.input_cm;

  switch (mode) {
    case OpAmpTb::OpenLoop: {
      nb.vsource("Vin", "vp", "0", "DC " + fmt(cm) + " AC 1");
      emit(nb, proc, "x1", "vp", "vm", "out", "vdd");
      // DC unity feedback through a huge inductor; AC-open.
      nb.inductor("out", "vm", 1e6);
      nb.capacitor("vm", "0", 1.0);
      nb.capacitor("out", "0", spec.cload);
      tb.in_source = "Vin";
      break;
    }
    case OpAmpTb::CommonMode: {
      nb.vsource("Vin", "vp", "0", "DC " + fmt(cm) + " AC 1");
      emit(nb, proc, "x1", "vp", "vm", "out", "vdd");
      nb.inductor("out", "vm", 1e6);
      // The inverting input is AC-driven with the same unit stimulus.
      nb.vsource("Vcm", "cmx", "0", "AC 1");
      nb.capacitor("vm", "cmx", 1.0);
      nb.capacitor("out", "0", spec.cload);
      tb.in_source = "Vin";
      break;
    }
    case OpAmpTb::ZoutProbe: {
      nb.vsource("Vin", "vp", "0", "DC " + fmt(cm));
      emit(nb, proc, "x1", "vp", "vm", "out", "vdd");
      nb.inductor("out", "vm", 1e6);
      nb.capacitor("vm", "0", 1.0);
      nb.isource("Iz", "0", "out", "AC 1");
      tb.in_source = "Iz";
      break;
    }
    case OpAmpTb::UnityStep: {
      // Unity-gain connection; +/-0.4 V pulse around the common mode wide
      // enough to expose both the rising and the falling slew.
      const double est_slew = std::max(perf.slew, 1e3);
      const double pw = std::clamp(8.0 * 0.8 / est_slew, 2e-6, 5e-3);
      nb.vsource("Vin", "vp", "0",
                 "PULSE(" + fmt(cm - 0.4) + " " + fmt(cm + 0.4) + " 1u 100n 100n " +
                     fmt(pw) + " " + fmt(4.0 * pw) + ")");
      emit(nb, proc, "x1", "vp", "out", "out", "vdd");
      nb.capacitor("out", "0", spec.cload);
      tb.in_source = "Vin";
      break;
    }
  }

  tb.netlist = nb.str();
  return tb;
}

}  // namespace ape::est
