#pragma once
/// \file constraints.h
/// System-level constraint transformation (paper Figure 1: "a constraint
/// transformation process allocates the system constraints onto analog
/// modules ... guided by the estimates produced by APE"; companion paper
/// [5] does this by directed interval search).
///
/// Two allocators are provided:
///  * allocate_gain_chain - split a total gain across N identical
///    inverting-amplifier stages so the cascade meets an end-to-end
///    bandwidth with minimum estimated area;
///  * allocate_amp_filter_chain - transform an "amplify by G, then
///    low-pass at f0" system spec into an amplifier spec and a filter
///    spec, widening the amplifier's bandwidth budget by directed
///    interval search until the composed corner stops sagging.
///
/// Composition uses the modules' own macromodel responses (|H_chain| =
/// |H_amp| * |H_lpf|, valid for the buffered stage interfaces APE emits).

#include <vector>

#include "src/estimator/modules.h"

namespace ape::est {

/// Outcome of a chain allocation.
struct ChainAllocation {
  bool feasible = false;
  std::vector<ModuleSpec> stage_specs;  ///< the transformed constraints
  std::vector<ModuleDesign> designs;    ///< APE-sized stages
  double system_gain = 0.0;             ///< composed passband gain
  double system_bw_hz = 0.0;            ///< composed -3 dB corner
  double total_area = 0.0;              ///< [m^2]
  double total_power = 0.0;             ///< [W]
  int iterations = 0;                   ///< directed-search steps taken
};

/// Split \p total_gain across \p n_stages inverting amplifiers such that
/// the cascade's -3 dB bandwidth meets \p bw_hz. Each stage's bandwidth
/// budget is widened by the standard cascade-shrinkage factor
/// sqrt(2^(1/n) - 1).
ChainAllocation allocate_gain_chain(const Process& proc, double total_gain,
                                    double bw_hz, int n_stages,
                                    double area_budget = 0.0);

/// Transform {gain G, low-pass corner f0} into an InvertingAmp spec plus
/// a 4th-order LowPassFilter spec. The amplifier bandwidth multiplier k
/// (amp BW = k * f0) is searched upward until the composed corner is
/// within \p corner_tol of the filter's own corner - the point where the
/// amplifier stops eating into the filter response.
ChainAllocation allocate_amp_filter_chain(const Process& proc, double gain,
                                          double f0_hz,
                                          double area_budget = 0.0,
                                          double corner_tol = 0.02);

}  // namespace ape::est
