#pragma once
/// \file verify.h
/// Bridge from APE design objects to the simulator substrate: runs a
/// design's testbench through DC + AC analyses and extracts the same
/// quantities the estimator predicted. This produces the "sim" columns of
/// the paper's Tables 2, 3 and 5.

#include <optional>

#include "src/estimator/components.h"
#include "src/estimator/netlist.h"
#include "src/estimator/opamp.h"

namespace ape::est {

/// Raw measurements extracted from one testbench run.
struct SimMeasurement {
  double out_dc = 0.0;                ///< DC voltage of the output node [V]
  double power = 0.0;                 ///< supply power vdd * |I(Vdd)| [W]
  double dc_gain = 0.0;               ///< signed low-frequency gain
  std::optional<double> ugf_hz;       ///< |H| = 1 crossing [Hz]
  std::optional<double> f3db_hz;      ///< -3 dB frequency [Hz]
  std::optional<double> phase_margin; ///< [deg]
  double zout = 0.0;                  ///< 1/|I_ac| when the probe is a source [ohm]
  double out_current = 0.0;           ///< DC current through the probe source [A]
};

/// Run DC + AC on a testbench. \p fstart/fstop bound the AC sweep.
/// Throws (NumericError / ParseError) if the netlist fails to converge.
SimMeasurement simulate(const Testbench& tb, double fstart = 1.0,
                        double fstop = 1e9, int points_per_decade = 20);

/// Table-2 style verification of a basic component: measured power, gain,
/// UGF, output current and CMRR next to the estimates.
struct ComponentSimReport {
  double power = 0.0;
  double gain = 0.0;            ///< signed voltage gain, or Vout for DcVolt
  std::optional<double> ugf_hz;
  double current = 0.0;
  double zout = 0.0;
  std::optional<double> cmrr_db;
};

ComponentSimReport simulate_component(const ComponentDesign& design,
                                      const Process& proc);

/// Table-3 style verification of an opamp: the eight columns of the paper.
struct OpAmpSimReport {
  double power = 0.0;              ///< DC supply power [W]
  double gain = 0.0;               ///< open-loop DC gain (magnitude)
  std::optional<double> ugf_hz;
  std::optional<double> phase_margin;
  double ibias = 0.0;              ///< measured tail current [A]
  double zout = 0.0;               ///< open-loop output impedance [ohm]
  std::optional<double> cmrr_db;
  double slew = 0.0;               ///< unity-gain step slew rate [V/s]
  double out_dc = 0.0;             ///< output DC level in unity feedback [V]
};

/// Run the full opamp verification suite: open-loop AC, common-mode AC,
/// output-impedance AC and a unity-gain transient step.
/// \p with_transient can be disabled to save time in sweeps.
OpAmpSimReport simulate_opamp(const OpAmpDesign& design, const Process& proc,
                              bool with_transient = true);

}  // namespace ape::est
