#include "src/estimator/netlist.h"

#include <cstdio>

#include "src/util/units.h"

namespace ape::est {
namespace {

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

void NetlistBuilder::models(const Process& proc) {
  lines_.push_back(spice::to_card_string(proc.nmos));
  lines_.push_back(spice::to_card_string(proc.pmos));
}

void NetlistBuilder::comment(const std::string& text) {
  lines_.push_back("* " + text);
}

void NetlistBuilder::resistor(const std::string& a, const std::string& b,
                              double ohms) {
  lines_.push_back("R" + std::to_string(++counter_) + " " + a + " " + b + " " +
                   fmt(ohms));
}

void NetlistBuilder::capacitor(const std::string& a, const std::string& b,
                               double farads) {
  lines_.push_back("C" + std::to_string(++counter_) + " " + a + " " + b + " " +
                   fmt(farads));
}

void NetlistBuilder::inductor(const std::string& a, const std::string& b,
                              double henries) {
  lines_.push_back("L" + std::to_string(++counter_) + " " + a + " " + b + " " +
                   fmt(henries));
}

void NetlistBuilder::vcvs(const std::string& name, const std::string& p,
                          const std::string& n, const std::string& cp,
                          const std::string& cn, double gain) {
  lines_.push_back(name + " " + p + " " + n + " " + cp + " " + cn + " " +
                   fmt(gain));
}

void NetlistBuilder::vsource(const std::string& name, const std::string& p,
                             const std::string& n, const std::string& spec) {
  lines_.push_back(name + " " + p + " " + n + " " + spec);
}

void NetlistBuilder::isource(const std::string& name, const std::string& p,
                             const std::string& n, const std::string& spec) {
  lines_.push_back(name + " " + p + " " + n + " " + spec);
}

void NetlistBuilder::mosfet(const Process& proc, const TransistorDesign& t,
                            const std::string& d, const std::string& g,
                            const std::string& s, const std::string& b) {
  const std::string& model = proc.card(t.type).name;
  lines_.push_back("M" + std::to_string(++counter_) + " " + d + " " + g + " " +
                   s + " " + b + " " + model + " W=" + fmt(t.w) +
                   " L=" + fmt(t.l));
}

void NetlistBuilder::line(const std::string& text) { lines_.push_back(text); }

std::string NetlistBuilder::fresh(const std::string& prefix) {
  return prefix + "_" + std::to_string(++counter_);
}

std::string NetlistBuilder::str() const {
  std::string out = title_ + "\n";
  for (const auto& l : lines_) {
    out += l;
    out += '\n';
  }
  out += ".end\n";
  return out;
}

}  // namespace ape::est
