/// \file modules_extra.cpp
/// The remainder of the paper's level-4 library list ("inverting
/// amplifiers, integrators, comparators, analog-to-digital converters,
/// digital-to-analog converters, filters, sample-and-hold circuits,
/// adders"): the five kinds not exercised by Table 5.

#include <algorithm>
#include <cmath>

#include "src/estimator/modules.h"
#include "src/estimator/verify.h"
#include "src/spice/analysis.h"
#include "src/spice/measure.h"
#include "src/spice/parser.h"
#include "src/util/error.h"

namespace ape::est {
namespace {

constexpr double kTwoPi = 2.0 * M_PI;

/// Macromodel Bode of a module design (the estimation view).
spice::Bode macro_bode(const ModuleDesign& d, const Process& proc, double f_lo,
                       double f_hi, int ppd = 20) {
  const Testbench tb = macro_testbench(d, proc);
  spice::Circuit ckt = spice::parse_netlist(tb.netlist);
  (void)spice::dc_operating_point(ckt);
  const auto ac = spice::ac_analysis(ckt, f_lo, f_hi, ppd);
  return spice::Bode(ac, ckt.find_node("out"));
}

double amp_area(const ModuleDesign& d) {
  double a = 0.0;
  for (const auto& o : d.opamps) a += o.perf.gate_area;
  return a;
}

double amp_power(const ModuleDesign& d) {
  double p = 0.0;
  for (const auto& o : d.opamps) p += o.perf.dc_power;
  return p;
}

}  // namespace

ModuleDesign ModuleEstimator::inverting_amp(const ModuleSpec& s) const {
  if (s.gain <= 0.0) throw SpecError("inverting amp: gain magnitude required");
  ModuleDesign d;
  d.spec = s;

  // Noise gain is 1 + R2/R1; budget the opamp UGF accordingly, with
  // headroom for the resistive load on the unbuffered output.
  const double r1 = 10e3;
  OpAmpSpec os;
  os.gain = std::max(50.0 * (1.0 + s.gain), 2000.0);
  os.ugf_hz = 2.5 * (1.0 + s.gain) * s.bw_hz;
  os.ibias = 2e-6;
  os.cload = 10e-12;
  // Buffered: a static output resistance would otherwise fight the
  // feedback network (the Miller loop's active HF impedance reduction is
  // outside the single-pole macromodel).
  os.buffer = true;
  os.zout = r1 / 20.0;
  d.opamps.push_back(opamp_.estimate(os));
  d.vref = d.opamps[0].perf.input_cm;

  d.passives = {{"R1", r1}, {"R2", s.gain * r1}};

  const spice::Bode bode =
      macro_bode(d, proc_, std::max(s.bw_hz * 1e-3, 0.1), s.bw_hz * 300.0);
  d.perf.gain = bode.dc_gain();  // magnitude; the stage inverts
  d.perf.bw_hz = bode.f_3db().value_or(0.0);
  d.perf.gate_area = amp_area(d);
  d.perf.dc_power = amp_power(d);
  d.perf.slew = d.opamps[0].perf.slew;
  return d;
}

ModuleDesign ModuleEstimator::integrator(const ModuleSpec& s) const {
  if (s.f0_hz <= 0.0) throw SpecError("integrator: unity-gain frequency required");
  ModuleDesign d;
  d.spec = s;

  // Lossy integrator: H(s) = -(Rf/R1) / (1 + s Rf C). The unity-gain
  // frequency is ~1/(2 pi R1 C); the DC gain (= Rf/R1) comes from the
  // spec's gain field.
  const double dc_gain = std::max(s.gain, 10.0);
  const double c = 1.5e-9;
  const double r1 = 1.0 / (kTwoPi * s.f0_hz * c);
  const double rf = dc_gain * r1;

  OpAmpSpec os;
  os.gain = 50.0 * dc_gain;
  os.ugf_hz = 100.0 * s.f0_hz;
  os.ibias = 2e-6;
  os.cload = 10e-12;
  os.buffer = true;
  os.zout = r1 / 20.0;
  d.opamps.push_back(opamp_.estimate(os));
  d.vref = d.opamps[0].perf.input_cm;

  d.passives = {{"R1", r1}, {"Rf", rf}, {"C", c}};

  const spice::Bode bode =
      macro_bode(d, proc_, s.f0_hz / (dc_gain * 10.0), s.f0_hz * 30.0, 30);
  d.perf.gain = bode.dc_gain();
  d.perf.f_unity_hz = bode.mag_crossing(1.0).value_or(0.0);
  d.perf.f3db_hz = bode.f_3db().value_or(0.0);  // the lossy corner
  d.perf.gate_area = amp_area(d);
  d.perf.dc_power = amp_power(d);
  return d;
}

ModuleDesign ModuleEstimator::comparator(const ModuleSpec& s) const {
  if (s.delay_s <= 0.0) throw SpecError("comparator: delay budget required");
  ModuleDesign d;
  d.spec = s;

  // Same dimensioning as the flash ADC's comparators, with a fixed
  // 20 mV input overdrive assumption.
  const double v_ov = 0.02;
  const double t_target = 0.5 * s.delay_s;
  OpAmpSpec os;
  os.gain = 2000.0;
  os.ugf_hz = 0.5 * proc_.vdd / (kTwoPi * v_ov * t_target);
  os.ibias = 2e-6;
  os.cload = 0.5e-12;
  OpAmpDesign comp = opamp_.estimate(os);
  d.opamps.push_back(comp);
  d.vref = comp.perf.input_cm;

  const double t_linear =
      0.5 * proc_.vdd / (kTwoPi * comp.perf.ugf_hz * v_ov);
  const double t_slew = 0.5 * proc_.vdd / std::max(comp.perf.slew, 1.0);
  d.perf.delay_s = std::max(t_linear, t_slew);
  d.perf.gain = comp.perf.gain;
  d.perf.gate_area = amp_area(d);
  d.perf.dc_power = amp_power(d);
  d.perf.slew = comp.perf.slew;
  return d;
}

ModuleDesign ModuleEstimator::adder(const ModuleSpec& s) const {
  const int n = std::clamp(s.order, 2, 4);
  if (s.gain <= 0.0) throw SpecError("adder: per-input gain required");
  ModuleDesign d;
  d.spec = s;
  d.spec.order = n;

  // Inverting summer: out = -(R2/R1) * sum(v_i). Noise gain 1 + n R2/R1.
  const double r1 = 10e3;
  OpAmpSpec os;
  os.gain = std::max(50.0 * (1.0 + n * s.gain), 2000.0);
  os.ugf_hz = 2.5 * (1.0 + n * s.gain) * s.bw_hz;
  os.ibias = 2e-6;
  os.cload = 10e-12;
  os.buffer = true;
  os.zout = r1 / 20.0;
  d.opamps.push_back(opamp_.estimate(os));
  d.vref = d.opamps[0].perf.input_cm;

  d.passives = {{"R1", r1}, {"R2", s.gain * r1}};

  const spice::Bode bode =
      macro_bode(d, proc_, std::max(s.bw_hz * 1e-3, 0.1), s.bw_hz * 300.0);
  d.perf.gain = bode.dc_gain();  // per driven input
  d.perf.bw_hz = bode.f_3db().value_or(0.0);
  d.perf.gate_area = amp_area(d);
  d.perf.dc_power = amp_power(d);
  return d;
}

ModuleDesign ModuleEstimator::r2r_dac(const ModuleSpec& s) const {
  if (s.order < 2 || s.order > 10) throw SpecError("dac: 2..10 bits supported");
  ModuleDesign d;
  d.spec = s;

  // Voltage-mode R-2R ladder into a unity-gain buffer. The buffer's
  // closed-loop bandwidth dominates the settling budget. Note the NMOS
  // follower output stage limits the usable code range to outputs below
  // ~VDD - Vdsat - Vgs (about 2/3 of full scale in the default process).
  OpAmpSpec os;
  os.gain = 5000.0;
  os.ugf_hz = std::max(6.0 / (kTwoPi * 0.3 * s.delay_s), 1e5);
  os.ibias = 2e-6;
  os.cload = 10e-12;
  os.buffer = true;
  os.zout = 2e3;
  OpAmpDesign buf = opamp_.estimate(os);
  d.opamps.push_back(buf);
  d.vref = buf.perf.input_cm;

  d.passives = {{"R", 10e3}};

  d.perf.lsb_v = proc_.vdd / (1 << s.order);
  // Settling: ~6 time constants of the unity-feedback loop plus the
  // ladder's own RC (tau = R * C_in at the buffer input).
  const double bw_cl = buf.perf.ugf_hz;
  const double cin = buf.transistors.front().cgs * 2.0;
  d.perf.delay_s = 6.0 / (kTwoPi * bw_cl) + 3.0 * 10e3 * cin;
  d.perf.gain = 1.0;
  d.perf.gate_area = amp_area(d);
  d.perf.dc_power = amp_power(d) + proc_.vdd * proc_.vdd / (10e3 * 3.0);
  return d;
}

}  // namespace ape::est
