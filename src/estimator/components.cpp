#include "src/estimator/components.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"
#include "src/util/units.h"

namespace ape::est {
namespace {

using spice::MosType;

constexpr double kTwoPi = 2.0 * M_PI;

/// Default overdrives per role - classic analog sizing habits.
constexpr double kVovMirror = 0.35;
constexpr double kVovCascode = 0.25;
constexpr double kVovTail = 0.2;
constexpr double kVovPair = 0.2;
constexpr double kVovLoad = 0.25;
constexpr double kVovFollower = 0.3;

double sum_area(const std::vector<TransistorDesign>& ts) {
  double a = 0.0;
  for (const auto& t : ts) a += t.gate_area();
  return a;
}

double db(double ratio) { return 20.0 * std::log10(std::max(ratio, 1e-12)); }

}  // namespace

const char* to_string(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::DcVolt: return "DCVolt";
    case ComponentKind::CurrentMirror: return "CurrMirr";
    case ComponentKind::WilsonSource: return "Wilson";
    case ComponentKind::CascodeSource: return "Cascode";
    case ComponentKind::GainNmos: return "GainNMOS";
    case ComponentKind::GainCmos: return "GainCMOS";
    case ComponentKind::GainCmosHalf: return "GainCMOSH";
    case ComponentKind::Follower: return "Follower";
    case ComponentKind::DiffNmos: return "DiffNMOS";
    case ComponentKind::DiffCmos: return "DiffCMOS";
  }
  return "?";
}

TransistorDesign ComponentEstimator::device_at_vgs(MosType type, double id,
                                                   double vgs, double vds,
                                                   double vbs, double l) const {
  const auto& card = proc_.card(type);
  const double w0 = proc_.wmin;
  const double i0 = spice::mos_eval(card, vgs, vds, vbs, w0, l).ids;
  if (i0 <= 0.0) {
    throw SpecError(std::string("device_at_vgs: device off at vgs=") +
                    units::format_eng(vgs) + "V");
  }
  double w = w0 * id / i0;
  if (w < proc_.wmin) {
    // Trade length for width (Ids ~ W/L).
    l = std::min(l * proc_.wmin / w, 256.0 * proc_.lmin);
    w = proc_.wmin;
  }
  if (w > proc_.wmax) throw SpecError("device_at_vgs: W beyond process limit");
  return xtor_.evaluate(type, w, l, vgs, vds, vbs);
}

ComponentDesign ComponentEstimator::estimate(const ComponentSpec& spec) const {
  switch (spec.kind) {
    case ComponentKind::DcVolt: return dc_volt(spec);
    case ComponentKind::CurrentMirror: return current_mirror(spec);
    case ComponentKind::WilsonSource: return wilson(spec);
    case ComponentKind::CascodeSource: return cascode(spec);
    case ComponentKind::GainNmos:
    case ComponentKind::GainCmos:
    case ComponentKind::GainCmosHalf: return gain_stage(spec);
    case ComponentKind::Follower: return follower(spec);
    case ComponentKind::DiffNmos:
    case ComponentKind::DiffCmos: return diff_pair(spec);
  }
  throw LookupError("unknown component kind");
}

// --- DCVolt -------------------------------------------------------------

ComponentDesign ComponentEstimator::dc_volt(const ComponentSpec& s) const {
  const double vdd = proc_.vdd;
  if (s.vref <= 0.2 || s.vref >= vdd - 0.2) {
    throw SpecError("DcVolt: vref must sit inside the supply");
  }
  // Complementary diode divider: PMOS diode from VDD to out, NMOS diode
  // from out to ground; both conduct ibias with Vgs fixed by vref.
  const double l = 2.0 * proc_.lmin;
  TransistorDesign nd = device_at_vgs(MosType::Nmos, s.ibias, s.vref, s.vref, 0.0, l);
  TransistorDesign pd =
      device_at_vgs(MosType::Pmos, s.ibias, vdd - s.vref, vdd - s.vref, 0.0, l);

  ComponentDesign d;
  d.spec = s;
  d.transistors = {pd, nd};
  d.roles = {"pdiode", "ndiode"};
  d.perf.gate_area = sum_area(d.transistors);
  d.perf.dc_power = vdd * s.ibias;
  d.perf.gain = s.vref;  // Table 2 reports the produced voltage here
  d.perf.current = s.ibias;
  d.perf.zout = 1.0 / (nd.gm + pd.gm + nd.gds + pd.gds);
  return d;
}

// --- Current mirrors ------------------------------------------------------

ComponentDesign ComponentEstimator::current_mirror(const ComponentSpec& s) const {
  const double l = 2.0 * proc_.lmin;
  // Reference (diode-connected) device: Vds = Vgs.
  TransistorDesign ref = xtor_.size_for_id_vov(MosType::Nmos, s.ibias,
                                               kVovMirror, /*vds=*/-1.0, 0.0, l);
  ref = xtor_.evaluate(MosType::Nmos, ref.w, ref.l, ref.vgs, ref.vgs, 0.0);
  // Output device: same geometry, Vds at mid-rail.
  TransistorDesign out = xtor_.evaluate(MosType::Nmos, ref.w, ref.l, ref.vgs,
                                        0.5 * proc_.vdd, 0.0);
  ComponentDesign d;
  d.spec = s;
  d.transistors = {ref, out};
  d.roles = {"ref", "out"};
  d.perf.gate_area = sum_area(d.transistors);
  d.perf.dc_power = proc_.vdd * s.ibias;  // reference branch
  d.perf.current = out.id;  // includes the lambda-induced copy error
  d.perf.zout = 1.0 / out.gds;
  return d;
}

ComponentDesign ComponentEstimator::wilson(const ComponentSpec& s) const {
  const double l = 2.0 * proc_.lmin;
  // Diode device M2 sets node b; cascode M3 rides on top of it.
  TransistorDesign m2 = xtor_.size_for_id_vov(MosType::Nmos, s.ibias,
                                              kVovCascode, -1.0, 0.0, l);
  m2 = xtor_.evaluate(MosType::Nmos, m2.w, m2.l, m2.vgs, m2.vgs, 0.0);
  const double vb = m2.vgs;
  // M3: source at vb, body effect applies; find its Vgs for Ibias.
  const double vout = 0.5 * proc_.vdd;
  const double vgs3 =
      xtor_.vgs_for_id(MosType::Nmos, m2.w, l, s.ibias, vout - vb, -vb);
  TransistorDesign m3 =
      xtor_.evaluate(MosType::Nmos, m2.w, l, vgs3, vout - vb, -vb);
  const double va = vb + vgs3;
  // M1: input device, gate at b, drain at a.
  TransistorDesign m1 = xtor_.evaluate(MosType::Nmos, m2.w, l, m2.vgs, va, 0.0);

  ComponentDesign d;
  d.spec = s;
  d.transistors = {m1, m2, m3};
  d.roles = {"m1_in", "m2_diode", "m3_casc"};
  d.perf.gate_area = sum_area(d.transistors);
  d.perf.dc_power = proc_.vdd * s.ibias;
  d.perf.current = m3.id;
  // Wilson output impedance ~ gm3 ro3 ro1 / 2 (feedback-boosted).
  d.perf.zout = 0.5 * m3.gm / (m3.gds * m1.gds);
  return d;
}

ComponentDesign ComponentEstimator::cascode(const ComponentSpec& s) const {
  const double l = 2.0 * proc_.lmin;
  TransistorDesign mref = xtor_.size_for_id_vov(MosType::Nmos, s.ibias,
                                                kVovCascode, -1.0, 0.0, l);
  mref = xtor_.evaluate(MosType::Nmos, mref.w, mref.l, mref.vgs, mref.vgs, 0.0);
  const double v1 = mref.vgs;
  // Stacked reference diode: source sits at v1.
  const double vgs_c =
      xtor_.vgs_for_id(MosType::Nmos, mref.w, l, s.ibias, v1, -v1);
  TransistorDesign mrefc =
      xtor_.evaluate(MosType::Nmos, mref.w, l, vgs_c, vgs_c, -v1);
  // Output pair mirrors both gates.
  TransistorDesign mout = xtor_.evaluate(MosType::Nmos, mref.w, l, mref.vgs, v1, 0.0);
  TransistorDesign moutc = xtor_.evaluate(MosType::Nmos, mref.w, l, vgs_c,
                                          0.5 * proc_.vdd - v1, -v1);
  ComponentDesign d;
  d.spec = s;
  d.transistors = {mref, mrefc, mout, moutc};
  d.roles = {"ref", "refc", "out", "outc"};
  d.perf.gate_area = sum_area(d.transistors);
  d.perf.dc_power = proc_.vdd * s.ibias;
  d.perf.current = moutc.id;
  d.perf.zout = moutc.gm / (moutc.gds * mout.gds);
  return d;
}

// --- Single-ended gain stages ----------------------------------------------

ComponentDesign ComponentEstimator::gain_stage(const ComponentSpec& s) const {
  const double vdd = proc_.vdd;
  const double l = 2.0 * proc_.lmin;
  const bool nmos_load = (s.kind == ComponentKind::GainNmos);
  const double i = (s.kind == ComponentKind::GainCmosHalf) ? 0.4 * s.ibias
                                                           : s.ibias;
  if (s.gain <= 0.0) throw SpecError("gain_stage: gain magnitude must be > 0");

  TransistorDesign driver, load;
  double vout_dc = 0.5 * vdd;

  if (nmos_load) {
    // NMOS diode load from VDD (gate = drain = VDD, source = output).
    load = device_at_vgs(MosType::Nmos, i, vdd - vout_dc, vdd - vout_dc,
                         -vout_dc, l);
    double gds_d = 0.0;
    for (int it = 0; it < 4; ++it) {
      const double gload = load.gm + load.gmb + load.gds + gds_d;
      const double gm_d = s.gain * gload;
      try {
        driver = xtor_.size_for_gm_id(MosType::Nmos, gm_d, i, vout_dc, 0.0, l);
      } catch (const SpecError& e) {
        throw SpecError(std::string("GainNMOS: gain ") +
                        units::format_eng(s.gain) + " infeasible: " + e.what());
      }
      gds_d = driver.gds;
    }
  } else {
    // PMOS diode load: gain ~ vov_p / vov_d; spread the overdrives so the
    // ratio is reachable inside the supply.
    const double vov_p_max = 0.5 * vdd - std::fabs(proc_.pmos.vto) - 0.2;
    double vov_d = std::clamp(vov_p_max / (1.3 * s.gain), 0.06, 0.3);
    driver = xtor_.size_for_id_vov(MosType::Nmos, i, vov_d, vout_dc, 0.0, l);
    double gds_extra = driver.gds;
    double vov_p = 0.0;
    for (int it = 0; it < 4; ++it) {
      const double gm_p = driver.gm / s.gain - gds_extra;
      if (gm_p <= 0.0) {
        throw SpecError("GainCMOS: gain " + units::format_eng(s.gain) +
                        " infeasible with this bias");
      }
      vov_p = 2.0 * i / gm_p;
      if (vov_p > vov_p_max) {
        throw SpecError("GainCMOS: gain " + units::format_eng(s.gain) +
                        " requires load overdrive beyond the supply");
      }
      vov_p = std::max(vov_p, 0.06);
      load = xtor_.size_for_id_vov(MosType::Pmos, i, vov_p,
                                   /*vds=*/std::fabs(proc_.pmos.vto) + vov_p,
                                   0.0, l);
      gds_extra = driver.gds + load.gds;
    }
    vout_dc = vdd - load.vgs;
    driver = xtor_.evaluate(MosType::Nmos, driver.w, driver.l, driver.vgs,
                            vout_dc, 0.0);
  }

  ComponentDesign d;
  d.spec = s;
  d.transistors = {driver, load};
  d.roles = {"driver", "load"};
  d.input_dc = driver.vgs;

  const double gload = nmos_load
                           ? load.gm + load.gmb + load.gds + driver.gds
                           : load.gm + load.gds + driver.gds;
  const double cout = s.cload + driver.cdb + load.csb + load.cdb +
                      (nmos_load ? load.cgs : load.cgs + load.cgd);
  d.perf.gain = -driver.gm / gload;
  d.perf.zout = 1.0 / gload;
  d.perf.ugf_hz = driver.gm / (kTwoPi * cout);
  d.perf.dc_power = vdd * i;
  d.perf.gate_area = sum_area(d.transistors);
  d.perf.slew = i / cout;
  d.perf.cin = driver.cgs + (1.0 + std::fabs(d.perf.gain)) * driver.cgd;
  return d;
}

// --- Source follower --------------------------------------------------------

ComponentDesign ComponentEstimator::follower(const ComponentSpec& s) const {
  const double vdd = proc_.vdd;
  const double l = 2.0 * proc_.lmin;
  const double vout = 0.5 * vdd;

  TransistorDesign sf = xtor_.size_for_id_vov(MosType::Nmos, s.ibias,
                                              kVovFollower, vdd - vout, -vout, l);
  // Sink mirror: 1:5 ratio keeps the reference branch cheap.
  const double iref = s.ibias / 5.0;
  TransistorDesign sink_ref =
      xtor_.size_for_id_vov(MosType::Nmos, iref, kVovMirror, -1.0, 0.0, l);
  sink_ref = xtor_.evaluate(MosType::Nmos, sink_ref.w, sink_ref.l, sink_ref.vgs,
                            sink_ref.vgs, 0.0);
  TransistorDesign sink = xtor_.evaluate(MosType::Nmos, 5.0 * sink_ref.w,
                                         sink_ref.l, sink_ref.vgs, vout, 0.0);

  ComponentDesign d;
  d.spec = s;
  d.transistors = {sf, sink, sink_ref};
  d.roles = {"sf", "sink", "sink_ref"};
  d.input_dc = vout + sf.vgs;
  if (d.input_dc > vdd) {
    throw SpecError("Follower: input bias above the supply; reduce Vov");
  }
  const double gtot = sf.gm + sf.gmb + sf.gds + sink.gds;
  const double cout = s.cload + sf.csb + sink.cdb;
  d.perf.gain = sf.gm / gtot;
  d.perf.zout = 1.0 / gtot;
  d.perf.ugf_hz = gtot / (kTwoPi * cout);  // follower bandwidth
  d.perf.dc_power = vdd * (s.ibias + iref);
  d.perf.gate_area = sum_area(d.transistors);
  d.perf.current = s.ibias;
  d.perf.slew = s.ibias / cout;  // sink-limited falling edge
  d.perf.cin = sf.cgd + (1.0 - d.perf.gain) * sf.cgs;
  return d;
}

// --- Differential pairs -----------------------------------------------------

ComponentDesign ComponentEstimator::diff_pair(const ComponentSpec& s) const {
  const double vdd = proc_.vdd;
  const bool cmos_load = (s.kind == ComponentKind::DiffCmos);
  const double itail = s.ibias;
  const double ibr = 0.5 * itail;
  const double vtail = 0.3;
  if (s.gain <= 0.0) throw SpecError("diff_pair: gain target must be > 0");

  TransistorDesign pair, load_a, load_b, tail, tail_ref;
  double vout_dc = 0.0;

  if (cmos_load) {
    // Mirror-loaded pair (paper eqs. 5-7): Adm = gm_i / (gds_i + gds_l).
    // Pick the channel length that supplies the required output resistance:
    // with the lref extension, gds ~ lambda*lref/Leff * Id.
    const double gm_i = 2.0 * ibr / kVovPair;
    const double gds_needed = gm_i / s.gain;
    const double lam_n = proc_.nmos.lambda * (proc_.nmos.lref > 0 ? proc_.nmos.lref : proc_.nmos.leff(2 * proc_.lmin));
    const double lam_p = proc_.pmos.lambda * (proc_.pmos.lref > 0 ? proc_.pmos.lref : proc_.pmos.leff(2 * proc_.lmin));
    double leff = (lam_n + lam_p) * ibr / gds_needed;
    double lch = std::clamp(leff + proc_.nmos.ld + proc_.pmos.ld,
                            2.0 * proc_.lmin, 64.0 * proc_.lmin);
    if (proc_.nmos.lref <= 0.0) lch = 2.0 * proc_.lmin;  // plain level-1 card

    // Load mirror (PMOS): diode side fixes Vsg.
    load_a = xtor_.size_for_id_vov(MosType::Pmos, ibr, kVovLoad, -1.0, 0.0, lch);
    load_a = xtor_.evaluate(MosType::Pmos, load_a.w, load_a.l, load_a.vgs,
                            load_a.vgs, 0.0);
    vout_dc = vdd - load_a.vgs;
    load_b = xtor_.evaluate(MosType::Pmos, load_a.w, load_a.l, load_a.vgs,
                            vdd - vout_dc, 0.0);
    pair = xtor_.size_for_id_vov(MosType::Nmos, ibr, kVovPair,
                                 vout_dc - vtail, -vtail, lch);
  } else {
    // NMOS diode loads: Adm = gm_i / (gm_l + gmb_l + gds_i + gds_l).
    const double l = 2.0 * proc_.lmin;
    vout_dc = vdd - 1.9;  // generous load Vgs: high load Vov buys gain room
    load_a = device_at_vgs(MosType::Nmos, ibr, vdd - vout_dc, vdd - vout_dc,
                           -vout_dc, l);
    load_b = load_a;
    double gds_i = 0.0;
    for (int it = 0; it < 4; ++it) {
      const double gload = load_a.gm + load_a.gmb + load_a.gds + gds_i;
      const double gm_i = s.gain * gload;
      try {
        pair = xtor_.size_for_gm_id(MosType::Nmos, gm_i, ibr,
                                    vout_dc - vtail, -vtail, l);
      } catch (const SpecError& e) {
        throw SpecError(std::string("DiffNMOS: gain ") +
                        units::format_eng(s.gain) + " infeasible: " + e.what());
      }
      gds_i = pair.gds;
    }
  }

  // Tail mirror (1:1).
  const double ltail = 4.0 * proc_.lmin;
  tail_ref =
      xtor_.size_for_id_vov(MosType::Nmos, itail, kVovTail, -1.0, 0.0, ltail);
  tail_ref = xtor_.evaluate(MosType::Nmos, tail_ref.w, tail_ref.l,
                            tail_ref.vgs, tail_ref.vgs, 0.0);
  tail = xtor_.evaluate(MosType::Nmos, tail_ref.w, tail_ref.l, tail_ref.vgs,
                        vtail, 0.0);

  ComponentDesign d;
  d.spec = s;
  d.transistors = {pair, pair, load_a, load_b, tail, tail_ref};
  d.roles = {"pair_p", "pair_n", "load_a", "load_b", "tail", "tail_ref"};
  d.input_dc = vtail + pair.vgs;

  const double cout = s.cload + pair.cdb + load_b.cdb +
                      (cmos_load ? load_b.cgd : load_b.cgs);
  if (cmos_load) {
    d.perf.gain = pair.gm / (pair.gds + load_b.gds);          // eq. (5)
    // eq. (7): CMRR = 2 gm_i gm_l / (g0 gd_i).
    d.perf.cmrr_db =
        db(2.0 * pair.gm * load_a.gm / (tail.gds * pair.gds));
  } else {
    d.perf.gain = -pair.gm / (load_a.gm + load_a.gmb + load_a.gds + pair.gds);
    d.perf.cmrr_db = db(2.0 * pair.gm * load_a.gm / (tail.gds * pair.gds));
  }
  d.perf.ugf_hz = pair.gm / (kTwoPi * cout);
  d.perf.dc_power = vdd * (itail + itail);  // tail + its reference branch
  d.perf.gate_area = sum_area(d.transistors);
  d.perf.current = itail;
  d.perf.zout = cmos_load ? 1.0 / (pair.gds + load_b.gds)
                          : 1.0 / (load_a.gm + load_a.gmb);
  d.perf.slew = itail / cout;
  d.perf.cin = pair.cgs + 2.0 * pair.cgd;
  return d;
}

}  // namespace ape::est
