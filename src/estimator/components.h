#pragma once
/// \file components.h
/// Level 2 of the APE hierarchy: the basic analog component library
/// (paper section 4, item 2, and Table 2).
///
/// Each component kind has: a sizing procedure that decomposes the
/// component requirement into per-transistor (gm, Id) requirements and
/// delegates to the TransistorEstimator; symbolic performance-composition
/// equations (e.g. eqs. 5-7 for the differential amplifier); and a
/// testbench emitter so the simulator substrate can verify the estimate.

#include <string>
#include <vector>

#include "src/estimator/netlist.h"
#include "src/estimator/process.h"
#include "src/estimator/transistor.h"

namespace ape::est {

/// The component topologies in the APE library (Table 2 rows + cascode).
enum class ComponentKind {
  DcVolt,         ///< DC bias voltage (complementary diode divider)
  CurrentMirror,  ///< simple 2-transistor NMOS mirror
  WilsonSource,   ///< 3-transistor Wilson current source
  CascodeSource,  ///< 4-transistor cascode current source
  GainNmos,       ///< common-source stage, NMOS diode load
  GainCmos,       ///< common-source stage, PMOS diode load
  GainCmosHalf,   ///< low-power variant of GainCmos (reduced bias)
  Follower,       ///< NMOS source follower output buffer
  DiffNmos,       ///< differential pair with NMOS diode loads
  DiffCmos,       ///< differential pair with PMOS current-mirror load
};

const char* to_string(ComponentKind kind);

/// Requirements for a basic component. Which fields matter depends on the
/// kind; unspecified fields keep their defaults.
struct ComponentSpec {
  ComponentKind kind = ComponentKind::CurrentMirror;
  double ibias = 100e-6;  ///< bias / tail / output current [A]
  double gain = 10.0;     ///< voltage-gain magnitude target (gain stages)
  double vref = 2.5;      ///< output voltage (DcVolt) [V]
  double cload = 1e-12;   ///< load capacitance for UGF / slew estimates [F]
};

/// Estimated performance attributes - the Table 2 columns.
struct ComponentPerf {
  double gate_area = 0.0;  ///< total gate area [m^2]
  double dc_power = 0.0;   ///< static supply power [W]
  double gain = 0.0;       ///< voltage gain (signed) or output voltage (DcVolt)
  double ugf_hz = 0.0;     ///< unity-gain / bandwidth figure [Hz] (0 = n/a)
  double current = 0.0;    ///< delivered output current [A] (0 = n/a)
  double zout = 0.0;       ///< output impedance [ohm]
  double cmrr_db = 0.0;    ///< common-mode rejection [dB] (diff pairs)
  double slew = 0.0;       ///< slew rate [V/s] (0 = n/a)
  double cin = 0.0;        ///< input capacitance [F]
};

/// Testbench flavours a component can emit.
enum class TbMode {
  Differential,  ///< normal stimulus on the (differential) input
  CommonMode,    ///< both inputs driven together (CMRR measurement)
};

/// A sized component: transistor designs with role labels, performance
/// attributes, and the bias voltages the testbench needs.
struct ComponentDesign {
  ComponentSpec spec;
  ComponentPerf perf;
  std::vector<TransistorDesign> transistors;
  std::vector<std::string> roles;  ///< parallel to `transistors`
  double input_dc = 0.0;           ///< input bias voltage for the testbench [V]

  /// Emit a self-contained verification testbench.
  Testbench testbench(const Process& proc, TbMode mode = TbMode::Differential) const;
};

/// The component estimator: sizes any ComponentSpec against a process.
class ComponentEstimator {
public:
  explicit ComponentEstimator(const Process& proc)
      : proc_(proc), xtor_(proc) {}

  /// Size a component and estimate its performance. Throws SpecError when
  /// the requirement is infeasible in this process/topology.
  ComponentDesign estimate(const ComponentSpec& spec) const;

  const Process& process() const { return proc_; }
  const TransistorEstimator& transistor_estimator() const { return xtor_; }

private:
  ComponentDesign dc_volt(const ComponentSpec& s) const;
  ComponentDesign current_mirror(const ComponentSpec& s) const;
  ComponentDesign wilson(const ComponentSpec& s) const;
  ComponentDesign cascode(const ComponentSpec& s) const;
  ComponentDesign gain_stage(const ComponentSpec& s) const;
  ComponentDesign follower(const ComponentSpec& s) const;
  ComponentDesign diff_pair(const ComponentSpec& s) const;

  /// Width that conducts \p id at a fixed (vgs, vds, vbs): exploits
  /// Ids proportional to W in all supported model levels.
  TransistorDesign device_at_vgs(spice::MosType type, double id, double vgs,
                                 double vds, double vbs, double l) const;

  const Process& proc_;
  TransistorEstimator xtor_;
};

}  // namespace ape::est
