#include "src/estimator/constraints.h"

#include <algorithm>
#include <cmath>

#include "src/spice/analysis.h"
#include "src/spice/measure.h"
#include "src/spice/parser.h"
#include "src/util/error.h"

namespace ape::est {
namespace {

/// Macromodel Bode of one module design.
spice::Bode module_bode(const ModuleDesign& d, const Process& proc,
                        double f_lo, double f_hi) {
  const Testbench tb = macro_testbench(d, proc);
  spice::Circuit ckt = spice::parse_netlist(tb.netlist);
  (void)spice::dc_operating_point(ckt);
  const auto ac = spice::ac_analysis(ckt, f_lo, f_hi, 20);
  return spice::Bode(ac, ckt.find_node("out"));
}

/// -3 dB corner of a product of responses, by bisection on a log grid.
/// Valid for buffered (non-loading) stage interfaces.
double composed_corner(const std::vector<spice::Bode>& stages, double f_lo,
                       double f_hi) {
  auto chain_mag = [&](double f) {
    double m = 1.0;
    for (const auto& b : stages) m *= b.mag_at(f);
    return m;
  };
  const double target = chain_mag(f_lo) / std::sqrt(2.0);
  double lo = f_lo, hi = f_hi;
  if (chain_mag(hi) > target) return hi;  // never drops: corner beyond sweep
  for (int i = 0; i < 60; ++i) {
    const double mid = std::sqrt(lo * hi);
    if (chain_mag(mid) >= target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::sqrt(lo * hi);
}

void fill_totals(ChainAllocation& out, const Process& proc, double f_ref) {
  out.total_area = 0.0;
  out.total_power = 0.0;
  std::vector<spice::Bode> bodes;
  for (const auto& d : out.designs) {
    out.total_area += d.perf.gate_area;
    out.total_power += d.perf.dc_power;
    bodes.push_back(module_bode(d, proc, f_ref * 1e-2, f_ref * 1e2));
  }
  double g = 1.0;
  for (const auto& b : bodes) g *= b.mag_at(f_ref * 1e-2);
  out.system_gain = g;
  out.system_bw_hz = composed_corner(bodes, f_ref * 1e-2, f_ref * 1e2);
}

}  // namespace

ChainAllocation allocate_gain_chain(const Process& proc, double total_gain,
                                    double bw_hz, int n_stages,
                                    double area_budget) {
  if (total_gain <= 1.0 || n_stages < 1 || n_stages > 6 || bw_hz <= 0.0) {
    throw SpecError("allocate_gain_chain: bad system spec");
  }
  const ModuleEstimator me(proc);

  // Equal split in log-gain is area-optimal for identical stage types;
  // the transformation work is the bandwidth budget: each stage needs
  // BW_stage = BW_total / sqrt(2^(1/n) - 1).
  const double g_stage = std::pow(total_gain, 1.0 / n_stages);
  const double shrink = std::sqrt(std::pow(2.0, 1.0 / n_stages) - 1.0);
  const double bw_stage = bw_hz / shrink;

  ChainAllocation out;
  for (int i = 0; i < n_stages; ++i) {
    ModuleSpec s;
    s.kind = ModuleKind::InvertingAmp;
    s.gain = g_stage;
    s.bw_hz = bw_stage;
    out.stage_specs.push_back(s);
    out.designs.push_back(me.estimate(s));
    ++out.iterations;
  }
  fill_totals(out, proc, bw_hz);
  out.feasible = out.system_bw_hz >= bw_hz &&
                 out.system_gain >= 0.9 * total_gain &&
                 (area_budget <= 0.0 || out.total_area <= area_budget);
  return out;
}

ChainAllocation allocate_amp_filter_chain(const Process& proc, double gain,
                                          double f0_hz, double area_budget,
                                          double corner_tol) {
  if (gain <= 1.0 || f0_hz <= 0.0) {
    throw SpecError("allocate_amp_filter_chain: bad system spec");
  }
  const ModuleEstimator me(proc);

  ModuleSpec lpf;
  lpf.kind = ModuleKind::LowPassFilter;
  lpf.order = 4;
  lpf.f0_hz = f0_hz;
  const ModuleDesign lpf_design = me.estimate(lpf);
  const spice::Bode lpf_bode =
      module_bode(lpf_design, proc, f0_hz * 1e-2, f0_hz * 1e2);

  // Directed interval search on the amplifier bandwidth multiplier k:
  // widen until the composed corner stops sagging below the filter's own
  // corner (the transformed constraint is then "amp BW >= k f0").
  ChainAllocation out;
  double k = 2.0;
  for (int iter = 0; iter < 12; ++iter) {
    ++out.iterations;
    ModuleSpec amp;
    amp.kind = ModuleKind::InvertingAmp;
    amp.gain = gain;
    amp.bw_hz = k * f0_hz;
    const ModuleDesign amp_design = me.estimate(amp);
    const spice::Bode amp_bode =
        module_bode(amp_design, proc, f0_hz * 1e-2, f0_hz * 1e2);
    const double fc =
        composed_corner({amp_bode, lpf_bode}, f0_hz * 1e-2, f0_hz * 1e2);
    const double lpf_corner = lpf_bode.f_3db().value_or(f0_hz);

    out.stage_specs = {amp.kind == ModuleKind::InvertingAmp ? amp : amp, lpf};
    out.designs = {amp_design, lpf_design};
    if (fc >= (1.0 - corner_tol) * lpf_corner) {
      fill_totals(out, proc, f0_hz);
      out.feasible =
          (area_budget <= 0.0 || out.total_area <= area_budget);
      return out;
    }
    k *= 1.5;
  }
  fill_totals(out, proc, f0_hz);
  out.feasible = false;
  return out;
}

}  // namespace ape::est
