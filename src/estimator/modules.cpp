#include "src/estimator/modules.h"

#include <algorithm>
#include <cmath>

#include "src/estimator/verify.h"
#include "src/spice/analysis.h"
#include "src/spice/measure.h"
#include "src/spice/parser.h"
#include "src/util/error.h"
#include "src/util/units.h"

namespace ape::est {
namespace {

using spice::MosType;

constexpr double kTwoPi = 2.0 * M_PI;

std::string fmt(double v) { return units::format_eng(v, 6); }

/// Abstract opamp instantiation: the estimator wires the same RC network
/// around VCVS macromodels (cheap, analytical) and around full transistor
/// opamps (the verification testbench), guaranteeing both see identical
/// topologies.
class AmpSource {
public:
  virtual ~AmpSource() = default;
  virtual void amp(NetlistBuilder& nb, size_t idx, const std::string& inp,
                   const std::string& inn, const std::string& out) const = 0;
  /// DC level the amp inputs must sit at.
  virtual double cm(size_t idx) const = 0;
};

/// Single-pole VCVS macromodel: A(s) = A0 / (1 + s A0 / (2 pi fu)), with
/// a series output resistance. Built purely from the level-3 attributes.
class MacroAmps : public AmpSource {
public:
  explicit MacroAmps(const std::vector<OpAmpDesign>& amps) : amps_(amps) {}

  void amp(NetlistBuilder& nb, size_t idx, const std::string& inp,
           const std::string& inn, const std::string& out) const override {
    const OpAmpPerf& p = amps_.at(idx).perf;
    const std::string i = std::to_string(idx);
    const std::string na = "mm_a" + i;
    const std::string np = "mm_p" + i;
    const std::string nb2 = "mm_b" + i;
    nb.vcvs("Ea" + i, na, "0", inp, inn, p.gain);
    const double rp = 1e3;
    const double cp = p.gain / (kTwoPi * p.ugf_hz) / rp;
    nb.resistor(na, np, rp);
    nb.capacitor(np, "0", cp);
    nb.vcvs("Eb" + i, nb2, "0", np, "0", 1.0);
    nb.resistor(nb2, out, std::max(p.zout, 1.0));
  }

  double cm(size_t) const override { return 0.0; }  // linear: DC irrelevant

private:
  const std::vector<OpAmpDesign>& amps_;
};

/// Full transistor-level emission (verification path).
class RealAmps : public AmpSource {
public:
  RealAmps(const Process& proc, const std::vector<OpAmpDesign>& amps)
      : proc_(proc), amps_(amps) {}

  void amp(NetlistBuilder& nb, size_t idx, const std::string& inp,
           const std::string& inn, const std::string& out) const override {
    amps_.at(idx).emit(nb, proc_, "x" + std::to_string(idx), inp, inn, out,
                       "vdd");
  }

  double cm(size_t idx) const override { return amps_.at(idx).perf.input_cm; }

private:
  const Process& proc_;
  const std::vector<OpAmpDesign>& amps_;
};

double passive(const ModuleDesign& d, const std::string& name) {
  for (const auto& p : d.passives) {
    if (p.name == name) return p.value;
  }
  throw LookupError("module: missing passive " + name);
}

/// Wire a module's network around the given amp source. Shared between
/// the macromodel estimate and the transistor testbench.
Testbench wire_module(const ModuleDesign& d, const Process& proc,
                      const AmpSource& amps, bool with_supply) {
  NetlistBuilder nb(std::string("APE module: ") + to_string(d.spec.kind));
  Testbench tb;
  tb.out_node = "out";

  if (with_supply) {
    nb.models(proc);
    nb.vsource("Vdd", "vdd", "0", "DC " + fmt(proc.vdd));
    tb.supply_source = "Vdd";
  }
  const double cm = amps.cm(0);
  // The converters reference the ladder taps / bit sources instead of the
  // mid-rail node; an unused Vref would trip ape-lint's dangling-node rule.
  if (d.spec.kind != ModuleKind::FlashAdc && d.spec.kind != ModuleKind::R2RDac) {
    nb.vsource("Vref", "vref", "0", "DC " + fmt(cm));
  }

  switch (d.spec.kind) {
    case ModuleKind::AudioAmp: {
      // Non-inverting stage: gain K = 1 + Rb/Ra, Ra referenced to Vref.
      nb.vsource("Vin", "vp", "0", "DC " + fmt(cm) + " AC 1");
      amps.amp(nb, 0, "vp", "vm", "out");
      nb.resistor("out", "vm", passive(d, "Rb"));
      nb.resistor("vm", "vref", passive(d, "Ra"));
      nb.capacitor("out", "0", 10e-12);
      tb.in_source = "Vin";
      break;
    }
    case ModuleKind::SampleHold: {
      // Track mode: switch on, hold cap charged, gain-of-2 buffer.
      // The input carries AC 1 for bandwidth and a step for slew rate.
      const double step = 0.2;
      nb.vsource("Vin", "vin", "0",
                 "DC " + fmt(cm) + " AC 1 PULSE(" + fmt(cm - step) + " " +
                     fmt(cm + step) + " 1u 100n 100n 1 2)");
      if (with_supply) {
        const TransistorDesign& sw = d.switches.at(0);
        nb.mosfet(proc, sw, "vin", "vdd", "nh", "0");
      } else {
        nb.resistor("vin", "nh", passive(d, "Ron"));
      }
      nb.capacitor("nh", "0", passive(d, "Ch"));
      amps.amp(nb, 0, "nh", "vm", "out");
      nb.resistor("out", "vm", passive(d, "Rb"));
      nb.resistor("vm", "vref", passive(d, "Ra"));
      nb.capacitor("out", "0", 10e-12);
      tb.in_source = "Vin";
      break;
    }
    case ModuleKind::FlashAdc: {
      // Resistor ladder plus comparators; the probe rides comparator
      // mid (the paper's delay measurement point). The input steps from
      // a quarter LSB below the mid tap to half an LSB above it.
      const int n_taps = (1 << d.spec.order) - 1;
      const double r_seg = passive(d, "Rseg");
      const double lsb = proc.vdd / (1 << d.spec.order);
      const int mid = (n_taps + 1) / 2;
      const double vtap = proc.vdd * mid / (1 << d.spec.order);
      nb.vsource("Vin", "vin", "0",
                 "DC " + fmt(vtap - 0.25 * lsb) + " AC 1 PULSE(" +
                     fmt(vtap - 0.25 * lsb) + " " + fmt(vtap + 0.5 * lsb) +
                     " 1u 50n 50n 1 2)");
      // Ladder from the supply (macromodel: from an ideal 5 V source).
      const std::string top = with_supply ? "vdd" : "vtop";
      if (!with_supply) nb.vsource("Vtop", "vtop", "0", "DC " + fmt(proc.vdd));
      std::string prev = top;
      for (int k = (1 << d.spec.order); k >= 1; --k) {
        const std::string node = (k == 1) ? "0" : "tap" + std::to_string(k - 1);
        nb.resistor(prev, node, r_seg);
        prev = node;
      }
      for (int k = 1; k <= n_taps; ++k) {
        const std::string out =
            (k == mid) ? "out" : "cmp" + std::to_string(k);
        amps.amp(nb, static_cast<size_t>(k - 1), "vin",
                 "tap" + std::to_string(k), out);
        nb.capacitor(out, "0", 0.5e-12);
      }
      tb.in_source = "Vin";
      break;
    }
    case ModuleKind::LowPassFilter: {
      // Cascaded Sallen-Key stages, equal R / equal C, gain-set Q.
      nb.vsource("Vin", "vin", "0", "DC " + fmt(cm) + " AC 1");
      const int stages = d.spec.order / 2;
      std::string in = "vin";
      for (int st = 0; st < stages; ++st) {
        const std::string sfx = std::to_string(st);
        const std::string a = "lp_a" + sfx;
        const std::string b = "lp_b" + sfx;
        const std::string vm = "lp_m" + sfx;
        const std::string out = (st == stages - 1) ? "out" : "lp_o" + sfx;
        const double r = passive(d, "R" + sfx);
        const double c = passive(d, "C" + sfx);
        nb.resistor(in, a, r);
        nb.resistor(a, b, r);
        nb.capacitor(a, out, c);
        nb.capacitor(b, "0", c);
        amps.amp(nb, static_cast<size_t>(st), b, vm, out);
        nb.resistor(out, vm, passive(d, "Rb" + sfx));
        nb.resistor(vm, "vref", passive(d, "Ra" + sfx));
        in = out;
      }
      tb.in_source = "Vin";
      break;
    }
    case ModuleKind::BandPassFilter: {
      // Multiple-feedback band-pass biquad (inverting).
      nb.vsource("Vin", "vin", "0", "DC " + fmt(cm) + " AC 1");
      const double r1 = passive(d, "R1");
      const double r2 = passive(d, "R2");
      const double c = passive(d, "C");
      nb.resistor("vin", "bp_x", r1);
      nb.capacitor("bp_x", "out", c);
      nb.capacitor("bp_x", "bp_y", c);
      nb.resistor("out", "bp_y", r2);
      amps.amp(nb, 0, "vref", "bp_y", "out");
      tb.in_source = "Vin";
      break;
    }
    case ModuleKind::InvertingAmp: {
      nb.vsource("Vin", "vin", "0", "DC " + fmt(cm) + " AC 1");
      nb.resistor("vin", "vm", passive(d, "R1"));
      nb.resistor("vm", "out", passive(d, "R2"));
      amps.amp(nb, 0, "vref", "vm", "out");
      nb.capacitor("out", "0", 10e-12);
      tb.in_source = "Vin";
      break;
    }
    case ModuleKind::Integrator: {
      nb.vsource("Vin", "vin", "0", "DC " + fmt(cm) + " AC 1");
      nb.resistor("vin", "vm", passive(d, "R1"));
      nb.resistor("vm", "out", passive(d, "Rf"));
      nb.capacitor("vm", "out", passive(d, "C"));
      amps.amp(nb, 0, "vref", "vm", "out");
      tb.in_source = "Vin";
      break;
    }
    case ModuleKind::Comparator: {
      // 20 mV overdrive step around the reference at t = 1 us.
      nb.vsource("Vin", "vin", "0",
                 "DC " + fmt(cm - 0.02) + " AC 1 PULSE(" + fmt(cm - 0.02) +
                     " " + fmt(cm + 0.02) + " 1u 20n 20n 1 2)");
      amps.amp(nb, 0, "vin", "vref", "out");
      nb.capacitor("out", "0", 0.5e-12);
      tb.in_source = "Vin";
      break;
    }
    case ModuleKind::Adder: {
      // Drive input 1 with the stimulus; remaining inputs sit at Vref.
      nb.vsource("Vin", "vin", "0", "DC " + fmt(cm) + " AC 1");
      nb.resistor("vin", "vm", passive(d, "R1"));
      for (int k = 1; k < d.spec.order; ++k) {
        nb.resistor("vref", "vm", passive(d, "R1"));
      }
      nb.resistor("vm", "out", passive(d, "R2"));
      amps.amp(nb, 0, "vref", "vm", "out");
      nb.capacitor("out", "0", 10e-12);
      tb.in_source = "Vin";
      break;
    }
    case ModuleKind::R2RDac: {
      // Voltage-mode R-2R ladder; bit sources default to the mid code
      // 0101... so the buffer sits in its input range. The bench/test
      // rewrites the bit sources to sweep codes.
      const double r = passive(d, "R");
      const int bits = d.spec.order;
      std::string prev = "lad0";
      nb.resistor(prev, "0", 2.0 * r);  // termination
      for (int k = 0; k < bits; ++k) {
        const std::string node = "lad" + std::to_string(k);
        const std::string bit = "bit" + std::to_string(k);
        const bool one = (k % 2) == 1;
        nb.vsource("Vb" + std::to_string(k), bit, "0",
                   "DC " + fmt(one ? proc.vdd : 0.0));
        nb.resistor(bit, node, 2.0 * r);
        if (k + 1 < bits) {
          const std::string next = "lad" + std::to_string(k + 1);
          nb.resistor(node, next, r);
          prev = next;
        }
      }
      // Buffer the MSB-side ladder node.
      amps.amp(nb, 0, "lad" + std::to_string(bits - 1), "out", "out");
      nb.capacitor("out", "0", 10e-12);
      tb.in_source = "Vb0";
      break;
    }
  }

  tb.netlist = nb.str();
  return tb;
}

double sum_amp_area(const std::vector<OpAmpDesign>& amps) {
  double a = 0.0;
  for (const auto& o : amps) a += o.perf.gate_area;
  return a;
}

double sum_amp_power(const std::vector<OpAmpDesign>& amps) {
  double p = 0.0;
  for (const auto& o : amps) p += o.perf.dc_power;
  return p;
}

}  // namespace

const char* to_string(ModuleKind kind) {
  switch (kind) {
    case ModuleKind::AudioAmp: return "amp";
    case ModuleKind::SampleHold: return "s&h";
    case ModuleKind::FlashAdc: return "adc";
    case ModuleKind::LowPassFilter: return "lpf";
    case ModuleKind::BandPassFilter: return "bpf";
    case ModuleKind::InvertingAmp: return "invamp";
    case ModuleKind::Integrator: return "integ";
    case ModuleKind::Comparator: return "cmp";
    case ModuleKind::Adder: return "adder";
    case ModuleKind::R2RDac: return "dac";
  }
  return "?";
}

Testbench ModuleDesign::testbench(const Process& proc) const {
  RealAmps amps(proc, opamps);
  return wire_module(*this, proc, amps, /*with_supply=*/true);
}

Testbench macro_testbench(const ModuleDesign& d, const Process& proc) {
  MacroAmps amps(d.opamps);
  return wire_module(d, proc, amps, /*with_supply=*/false);
}

ModuleDesign ModuleEstimator::estimate(const ModuleSpec& spec) const {
  ErrorContext scope("module-estimator");
  switch (spec.kind) {
    case ModuleKind::AudioAmp: return audio_amp(spec);
    case ModuleKind::SampleHold: return sample_hold(spec);
    case ModuleKind::FlashAdc: return flash_adc(spec);
    case ModuleKind::LowPassFilter: return low_pass(spec);
    case ModuleKind::BandPassFilter: return band_pass(spec);
    case ModuleKind::InvertingAmp: return inverting_amp(spec);
    case ModuleKind::Integrator: return integrator(spec);
    case ModuleKind::Comparator: return comparator(spec);
    case ModuleKind::Adder: return adder(spec);
    case ModuleKind::R2RDac: return r2r_dac(spec);
  }
  throw LookupError("unknown module kind");
}

// --- Audio amplifier --------------------------------------------------------

ModuleDesign ModuleEstimator::audio_amp(const ModuleSpec& s) const {
  if (s.gain <= 1.0) throw SpecError("amp: closed-loop gain must exceed 1");
  ModuleDesign d;
  d.spec = s;

  OpAmpSpec os;
  os.gain = std::max(50.0 * s.gain, 2000.0);  // loop-gain margin
  os.ugf_hz = 2.2 * s.gain * s.bw_hz;
  os.ibias = 2e-6;
  os.cload = 10e-12;
  os.buffer = false;
  d.opamps.push_back(opamp_.estimate(os));
  d.vref = d.opamps[0].perf.input_cm;

  const double ra = 5e3;
  d.passives = {{"Ra", ra}, {"Rb", (s.gain - 1.0) * ra}};

  // Macromodel sweep gives the non-ideal gain and bandwidth estimate.
  MacroAmps macro(d.opamps);
  const Testbench mtb = wire_module(d, proc_, macro, /*with_supply=*/false);
  const SimMeasurement m = simulate(mtb, std::max(s.bw_hz * 1e-3, 0.1),
                                    s.bw_hz * 300.0, 20);
  d.perf.gain = std::fabs(m.dc_gain);
  d.perf.bw_hz = m.f3db_hz.value_or(0.0);
  d.perf.gate_area = sum_amp_area(d.opamps);
  d.perf.dc_power = sum_amp_power(d.opamps);
  d.perf.slew = d.opamps[0].perf.slew;
  return d;
}

// --- Sample and hold --------------------------------------------------------

ModuleDesign ModuleEstimator::sample_hold(const ModuleSpec& s) const {
  ModuleDesign d;
  d.spec = s;

  OpAmpSpec os;
  os.gain = 5000.0;
  os.ugf_hz = 2.5 * s.gain * s.bw_hz;
  os.ibias = 2e-6;
  os.cload = 10e-12;
  // The feedback divider loads the output: buffer it.
  os.buffer = true;
  os.zout = 2.5e3;
  // Slew requirement: itail/cc >= 4x spec; raise UGF until satisfied
  // (slew ~ vov1 * 2 pi fu).
  OpAmpDesign amp = opamp_.estimate(os);
  for (int it = 0; it < 6 && amp.perf.slew < 4.0 * s.slew; ++it) {
    os.ugf_hz *= 2.0;
    amp = opamp_.estimate(os);
  }
  d.opamps.push_back(amp);
  d.vref = amp.perf.input_cm;

  const double ch = 10e-12;
  const double ron_target = 1.0 / (kTwoPi * s.bw_hz * ch * 50.0);
  // Switch: NMOS in deep triode at mid-rail; Ron = 1/(kp W/Leff Vov).
  const auto& nn = proc_.nmos;
  const double vov_sw = proc_.vdd - d.vref - 1.3;  // Vgs-Vth at the hold node
  double wsw = nn.leff(proc_.lmin) /
               (ron_target * nn.kp * std::max(vov_sw, 0.3));
  wsw = std::clamp(wsw, proc_.wmin, proc_.wmax);
  TransistorDesign sw = xtor_.evaluate(MosType::Nmos, wsw, proc_.lmin,
                                       proc_.vdd - d.vref, 0.01, -d.vref);
  d.switches.push_back(sw);
  const double ron = 1.0 / std::max(sw.gds, 1e-9);

  const double ra = 50e3;
  d.passives = {{"Ra", ra},
                {"Rb", (s.gain - 1.0) * ra},
                {"Ch", ch},
                {"Ron", ron}};

  MacroAmps macro(d.opamps);
  const Testbench mtb = wire_module(d, proc_, macro, /*with_supply=*/false);
  const SimMeasurement m = simulate(mtb, std::max(s.bw_hz * 1e-3, 0.1),
                                    s.bw_hz * 300.0, 20);
  d.perf.gain = std::fabs(m.dc_gain);
  d.perf.bw_hz = m.f3db_hz.value_or(0.0);
  d.perf.slew = amp.perf.slew;
  d.perf.gate_area = sum_amp_area(d.opamps) + sw.gate_area();
  d.perf.dc_power = sum_amp_power(d.opamps);
  return d;
}

// --- Flash ADC --------------------------------------------------------------

ModuleDesign ModuleEstimator::flash_adc(const ModuleSpec& s) const {
  if (s.order < 2 || s.order > 8) throw SpecError("adc: 2..8 bits supported");
  ModuleDesign d;
  d.spec = s;

  const int n_comp = (1 << s.order) - 1;
  const double lsb = proc_.vdd / (1 << s.order);
  const double v_ov = 0.5 * lsb;  // comparator input overdrive

  // Comparator: uncompensated-ish two-stage opamp; UGF from the delay
  // budget: traverse half the supply at slope 2*pi*fu*v_ov.
  const double t_target = 0.5 * s.delay_s;
  OpAmpSpec os;
  os.gain = 2000.0;
  os.ugf_hz = 0.5 * proc_.vdd / (kTwoPi * v_ov * t_target);
  os.ibias = 2e-6;
  os.cload = 0.5e-12;
  os.buffer = false;
  OpAmpDesign comp = opamp_.estimate(os);
  for (int k = 0; k < n_comp; ++k) d.opamps.push_back(comp);
  d.vref = comp.perf.input_cm;

  const double r_seg = 5e3;
  d.passives = {{"Rseg", r_seg}};

  // Delay: linear traverse plus slew limit, plus ladder settling.
  const double t_linear = 0.5 * proc_.vdd / (kTwoPi * comp.perf.ugf_hz * v_ov);
  const double t_slew = 0.5 * proc_.vdd / comp.perf.slew;
  const double r_ladder = r_seg * (1 << s.order) / 4.0;  // worst-case tap
  const double cin = comp.transistors.front().cgs * 2.0;
  const double t_ladder = 3.0 * r_ladder * cin;
  d.perf.delay_s = std::max(t_linear, t_slew) + t_ladder;
  d.perf.gate_area = sum_amp_area(d.opamps);
  d.perf.dc_power =
      sum_amp_power(d.opamps) + proc_.vdd * proc_.vdd / (r_seg * (1 << s.order));
  return d;
}

// --- Sallen-Key low-pass ----------------------------------------------------

ModuleDesign ModuleEstimator::low_pass(const ModuleSpec& s) const {
  if (s.order != 2 && s.order != 4) {
    throw SpecError("lpf: order 2 or 4 supported");
  }
  ModuleDesign d;
  d.spec = s;

  // Butterworth stage Qs.
  const std::vector<double> qs =
      (s.order == 4) ? std::vector<double>{0.5412, 1.3066}
                     : std::vector<double>{0.7071};
  const double c = 1.5e-9;
  const double r = 1.0 / (kTwoPi * s.f0_hz * c);

  for (size_t st = 0; st < qs.size(); ++st) {
    const double k = 3.0 - 1.0 / qs[st];
    OpAmpSpec os;
    os.gain = 5000.0;
    os.ugf_hz = std::max(200.0 * s.f0_hz, 60.0 * s.f0_hz * k * qs[st]);
    os.ibias = 2e-6;
    os.cload = 10e-12;
    os.buffer = true;
    os.zout = r / 40.0;
    d.opamps.push_back(opamp_.estimate(os));
    const double ra = 10e3;
    const std::string sfx = std::to_string(st);
    d.passives.push_back({"R" + sfx, r});
    d.passives.push_back({"C" + sfx, c});
    d.passives.push_back({"Ra" + sfx, ra});
    d.passives.push_back({"Rb" + sfx, (k - 1.0) * ra});
  }
  d.vref = d.opamps[0].perf.input_cm;

  MacroAmps macro(d.opamps);
  const Testbench mtb = wire_module(d, proc_, macro, /*with_supply=*/false);
  const SimMeasurement m =
      simulate(mtb, s.f0_hz * 1e-3, s.f0_hz * 100.0, 40);
  d.perf.gain = std::fabs(m.dc_gain);
  d.perf.f3db_hz = m.f3db_hz.value_or(0.0);
  // Re-derive the -20 dB point from the macromodel bode.
  {
    spice::Circuit ckt = spice::parse_netlist(mtb.netlist);
    (void)spice::dc_operating_point(ckt);
    const auto ac = spice::ac_analysis(ckt, s.f0_hz * 1e-2, s.f0_hz * 100.0, 40);
    const spice::Bode bode(ac, ckt.find_node("out"));
    d.perf.f20db_hz = bode.mag_crossing(bode.dc_gain() / 10.0).value_or(0.0);
  }
  d.perf.gate_area = sum_amp_area(d.opamps);
  d.perf.dc_power = sum_amp_power(d.opamps);
  return d;
}

// --- MFB band-pass ----------------------------------------------------------

ModuleDesign ModuleEstimator::band_pass(const ModuleSpec& s) const {
  ModuleDesign d;
  d.spec = s;

  const double q = 1.0;  // BW = f0, the paper's spec shape
  const double c = 1.5e-9;
  const double r_geo = 1.0 / (kTwoPi * s.f0_hz * c);
  const double r2 = 2.0 * q * r_geo;
  const double r1 = r2 / (4.0 * q * q);

  OpAmpSpec os;
  os.gain = 5000.0;
  os.ugf_hz = 300.0 * s.f0_hz;
  os.ibias = 2e-6;
  os.cload = 10e-12;
  os.buffer = true;
  os.zout = r1 / 20.0;
  d.opamps.push_back(opamp_.estimate(os));
  d.vref = d.opamps[0].perf.input_cm;

  d.passives = {{"R1", r1}, {"R2", r2}, {"C", c}};

  MacroAmps macro(d.opamps);
  const Testbench mtb = wire_module(d, proc_, macro, /*with_supply=*/false);
  spice::Circuit ckt = spice::parse_netlist(mtb.netlist);
  (void)spice::dc_operating_point(ckt);
  const auto ac = spice::ac_analysis(ckt, s.f0_hz * 1e-2, s.f0_hz * 1e2, 40);
  const spice::Bode bode(ac, ckt.find_node("out"));
  d.perf.f0_hz = bode.peak_freq();
  d.perf.gain = bode.peak_gain();
  d.perf.bw_hz = bode.bandwidth_3db().value_or(0.0);
  d.perf.gate_area = sum_amp_area(d.opamps);
  d.perf.dc_power = sum_amp_power(d.opamps);
  return d;
}

}  // namespace ape::est
