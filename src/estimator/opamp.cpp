#include "src/estimator/opamp.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"
#include "src/util/units.h"

namespace ape::est {
namespace {

using spice::MosType;

constexpr double kTwoPi = 2.0 * M_PI;
constexpr double kVovLoad2 = 0.25;   // mirror load = 2nd stage overdrive
constexpr double kVovTailO = 0.25;   // tail / bias mirror overdrive
constexpr double kVovBuffer = 0.3;   // output follower overdrive

/// Channel length that delivers a target total gds at a branch current,
/// using the lref Early-voltage extension (see mos_model.h).
double length_for_gds(const Process& p, double i_branch, double gds_total) {
  const double num = (p.nmos.lambda * p.nmos.lref + p.pmos.lambda * p.pmos.lref) *
                     i_branch;
  double l = num / std::max(gds_total, 1e-15);
  return std::clamp(l, 2.0 * p.lmin, 256.0 * p.lmin);
}

/// A mirror output device: same Vgs as \p ref, W/Leff scaled by \p ratio.
/// If the implied width pins at the process minimum the length stretches
/// instead, preserving the current ratio.
TransistorDesign mirror_device(const TransistorEstimator& x, const Process& p,
                               MosType type, const TransistorDesign& ref,
                               double ratio, double vds, double l = -1.0) {
  const auto& card = p.card(type);
  if (l < 0.0) l = ref.l;
  double w = ratio * ref.w * card.leff(l) / card.leff(ref.l);
  if (w < p.wmin) {
    // Stretch L to keep W/Leff: leff = wmin * leff_ref / (ratio * wref).
    const double leff = p.wmin * card.leff(ref.l) / (ratio * ref.w);
    l = std::min(leff + 2.0 * card.ld, 256.0 * p.lmin);
    w = p.wmin;
  }
  if (w > p.wmax) throw SpecError("OpAmp: mirror device exceeds max width");
  return x.evaluate(type, w, l, ref.vgs, vds, 0.0);
}

}  // namespace

OpAmpDesign OpAmpEstimator::estimate(const OpAmpSpec& spec) const {
  ErrorContext scope("opamp-estimator");
  // Iterate the gm1 margin so the parasitic-corrected UGF estimate meets
  // the spec (the raw gm1/(2 pi Cc) formula overshoots by the Miller
  // overlap of M6 and the second-pole magnitude droop).
  double k = 1.0;
  OpAmpDesign d = build(spec, k);
  for (int pass = 0; pass < 3; ++pass) {
    if (d.perf.ugf_hz <= 0.0) break;
    if (std::fabs(d.perf.ugf_hz / spec.ugf_hz - 1.0) < 0.02) break;
    k *= std::clamp(spec.ugf_hz / d.perf.ugf_hz, 0.5, 2.0);
    d = build(spec, k);
  }
  return d;
}

OpAmpDesign OpAmpEstimator::build(const OpAmpSpec& spec, double ugf_margin) const {
  if (spec.gain <= 1.0) throw SpecError("OpAmp: gain target must exceed 1");
  if (spec.ugf_hz <= 0.0) throw SpecError("OpAmp: UGF target must be positive");
  if (spec.ibias <= 0.0) throw SpecError("OpAmp: Ibias must be positive");
  if (spec.cload <= 0.0) throw SpecError("OpAmp: load capacitance required");
  const double vdd = proc_.vdd;

  // --- 1. Compensation and first-stage transconductance --------------------
  const double cc = std::clamp(0.25 * spec.cload, 0.2e-12, 50e-12);
  const double gm1 = kTwoPi * spec.ugf_hz * cc * ugf_margin;

  // --- 2. Tail current: mirror ratio m places Vov1 near 0.2 V --------------
  double m_ratio = std::clamp(gm1 * 0.2 / spec.ibias, 0.25, 32.0);
  double itail = m_ratio * spec.ibias;
  const double vov1 = itail / gm1;
  if (vov1 < 0.05 || vov1 > 1.2) {
    throw SpecError("OpAmp: UGF " + units::format_eng(spec.ugf_hz) +
                    "Hz infeasible at Ibias " + units::format_eng(spec.ibias) +
                    "A (implied pair Vov=" + units::format_eng(vov1) + "V)");
  }
  const double i1 = 0.5 * itail;

  // --- 3. Gain budget -------------------------------------------------------
  const double a_buf = spec.buffer ? 0.85 : 1.0;
  const double a_need = spec.gain / a_buf;
  const double a_stage = std::sqrt(a_need);

  // --- 4. First stage -------------------------------------------------------
  const bool wilson = (spec.source == CurrentSourceKind::Wilson);
  const double l1 = length_for_gds(proc_, i1, gm1 / a_stage);

  // Mirror load (PMOS), diode side fixes Vsg; its Vov is shared with the
  // second stage for systematic-offset matching.
  TransistorDesign m3 =
      xtor_.size_for_id_vov(MosType::Pmos, i1, kVovLoad2, -1.0, 0.0, l1);
  m3 = xtor_.evaluate(MosType::Pmos, m3.w, m3.l, m3.vgs, m3.vgs, 0.0);
  const double o1_dc = vdd - m3.vgs;
  TransistorDesign m4 =
      xtor_.evaluate(MosType::Pmos, m3.w, m3.l, m3.vgs, m3.vgs, 0.0);

  // Tail voltage: one Vdsat for the simple mirror, a diode + Vdsat for
  // the Wilson (it stacks two devices).
  double vtail = 0.3;
  TransistorDesign w_in, w_diode, w_casc;  // Wilson devices
  TransistorDesign m8, m5;                 // simple-mirror devices
  if (wilson) {
    w_in = xtor_.size_for_id_vov(MosType::Nmos, spec.ibias, kVovTailO, -1.0,
                                 0.0, 2.0 * proc_.lmin);
    // Diode M2w carries m*Ibias at the same Vov with a m-scaled W/Leff.
    w_diode = mirror_device(xtor_, proc_, MosType::Nmos, w_in, m_ratio,
                            w_in.vgs);
    const double vb = w_diode.vgs;
    vtail = vb + 0.35;
    const double vgs3w = xtor_.vgs_for_id(MosType::Nmos, w_diode.w, w_diode.l,
                                          itail, vtail - vb, -vb);
    w_casc = xtor_.evaluate(MosType::Nmos, w_diode.w, w_diode.l, vgs3w,
                            vtail - vb, -vb);
    // Input device sits at va = vb + vgs3w.
    w_in = xtor_.evaluate(MosType::Nmos, w_in.w, w_in.l, w_in.vgs, vb + vgs3w,
                          0.0);
  } else {
    m8 = xtor_.size_for_id_vov(MosType::Nmos, spec.ibias, kVovTailO, -1.0, 0.0,
                               4.0 * proc_.lmin);
    m8 = xtor_.evaluate(MosType::Nmos, m8.w, m8.l, m8.vgs, m8.vgs, 0.0);
    m5 = mirror_device(xtor_, proc_, MosType::Nmos, m8, m_ratio, vtail);
  }

  // Input pair.
  TransistorDesign m1;
  try {
    m1 = xtor_.size_for_gm_id(MosType::Nmos, gm1, i1, o1_dc - vtail, -vtail, l1);
  } catch (const SpecError& e) {
    throw SpecError(std::string("OpAmp: input pair infeasible: ") + e.what());
  }
  TransistorDesign m2 = m1;

  // --- 5. Second stage -------------------------------------------------------
  const double cl2 = spec.buffer ? 2e-12 : spec.cload;
  const double gm6 = 2.5 * gm1 * std::max(cl2, cc) / cc;
  const double i6 = 0.5 * gm6 * kVovLoad2;
  const double l2 = length_for_gds(proc_, i6, gm6 / a_stage);
  TransistorDesign m6 =
      xtor_.size_for_id_vov(MosType::Pmos, i6, kVovLoad2, 0.5 * vdd, 0.0, l2);
  // Second-stage sink mirrors the bias diode; match W/Leff ratio to I6.
  TransistorDesign m7;
  if (wilson) {
    m7 = mirror_device(xtor_, proc_, MosType::Nmos, w_diode,
                       i6 / (m_ratio * spec.ibias), 0.5 * vdd, l2);
  } else {
    m7 = mirror_device(xtor_, proc_, MosType::Nmos, m8, i6 / spec.ibias,
                       0.5 * vdd, l2);
  }

  // --- 6. Output buffer -------------------------------------------------------
  TransistorDesign m9, m10;
  double i9 = 0.0, out_dc = 0.5 * vdd;
  if (spec.buffer) {
    double gm9;
    if (spec.zout > 0.0) {
      gm9 = (1.0 / spec.zout) / 1.12;  // gmb eats ~12% of the conductance
    } else {
      gm9 = 2.0 * (0.5 * i6) / kVovBuffer;
    }
    // The follower's output pole gm9/CL must clear the UGF or it erases
    // the crossing; Zout is an upper bound, so overshoot it when needed.
    gm9 = std::max(gm9, 3.0 * kTwoPi * spec.ugf_hz * spec.cload);
    i9 = 0.5 * gm9 * kVovBuffer;
    if (i9 < spec.ibias) i9 = spec.ibias;  // keep the branch biased sanely
    const double out2_dc = 0.5 * vdd;
    // Follower output rides one Vgs below the second-stage output.
    TransistorDesign probe = xtor_.size_for_id_vov(
        MosType::Nmos, i9, kVovBuffer, 1.0, -(out2_dc - 1.4), 2.0 * proc_.lmin);
    out_dc = out2_dc - probe.vgs;
    try {
      m9 = xtor_.size_for_id_vov(MosType::Nmos, i9, kVovBuffer, vdd - out_dc,
                                 -out_dc, 2.0 * proc_.lmin);
    } catch (const SpecError& e) {
      throw SpecError(std::string("OpAmp: buffer infeasible: ") + e.what());
    }
    out_dc = out2_dc - m9.vgs;
    const TransistorDesign& bias_ref = wilson ? w_diode : m8;
    const double iref_dev = wilson ? m_ratio * spec.ibias : spec.ibias;
    m10 = mirror_device(xtor_, proc_, MosType::Nmos, bias_ref, i9 / iref_dev,
                        out_dc, 2.0 * proc_.lmin);
  }

  // --- 7. Compose performance -------------------------------------------------
  OpAmpDesign d;
  d.spec = spec;
  d.transistors = {m1, m2, m3, m4, m6, m7};
  d.roles = {"m1", "m2", "m3", "m4", "m6", "m7"};
  if (wilson) {
    d.transistors.insert(d.transistors.end(), {w_in, w_diode, w_casc});
    d.roles.insert(d.roles.end(), {"w_in", "w_diode", "w_casc"});
  } else {
    d.transistors.insert(d.transistors.end(), {m5, m8});
    d.roles.insert(d.roles.end(), {"m5", "m8"});
  }
  if (spec.buffer) {
    d.transistors.insert(d.transistors.end(), {m9, m10});
    d.roles.insert(d.roles.end(), {"m9", "m10"});
  }

  const double a1 = m1.gm / (m1.gds + m4.gds);
  const double a2 = m6.gm / (m6.gds + m7.gds);
  const double ab =
      spec.buffer ? m9.gm / (m9.gm + m9.gmb + m9.gds + m10.gds) : 1.0;
  const double tail_gds = wilson
                              ? w_casc.gds * w_diode.gm / (w_casc.gm)  // boosted
                              : m5.gds;

  d.perf.gain = a1 * a2 * ab;
  // Parasitic-corrected UGF: Cc plus M6's Miller overlap, with the
  // second-pole magnitude droop (same composition as the synth evaluator).
  const double fp2 = m6.gm / (kTwoPi * (cl2 + m6.cdb + m7.cdb));
  const double fpb =
      spec.buffer
          ? (m9.gm + m9.gmb + m9.gds + m10.gds) / (kTwoPi * spec.cload)
          : 1e18;
  const double u0 = gm1 / (kTwoPi * (cc + m6.cgd));
  double fu = u0;
  for (int i = 0; i < 4; ++i) {
    fu = u0 / std::sqrt((1.0 + (fu / fp2) * (fu / fp2)) *
                        (1.0 + (fu / fpb) * (fu / fpb)));
  }
  d.perf.ugf_hz = fu;
  d.perf.phase_margin =
      90.0 - std::atan(d.perf.ugf_hz / fp2) * 180.0 / M_PI;
  d.perf.dc_power = vdd * (spec.ibias + itail + i6 + i9);
  double area = 0.0;
  for (const auto& t : d.transistors) area += t.gate_area();
  d.perf.gate_area = area;
  d.perf.ibias = itail;
  d.perf.zout = spec.buffer ? 1.0 / (m9.gm + m9.gmb + m9.gds + m10.gds)
                            : 1.0 / (m6.gds + m7.gds);
  d.perf.cmrr_db =
      20.0 * std::log10(std::max(a1 * 2.0 * m3.gm / tail_gds, 1e-12));
  double slew = std::min(itail / cc, i6 / (cl2 + cc));
  if (spec.buffer) slew = std::min(slew, i9 / spec.cload);
  d.perf.slew = slew;
  // Input-referred white noise: both input devices plus the mirror load
  // referred through gm1 (channel thermal, gamma = 2/3).
  {
    const double k4kt = 4.0 * 1.380649e-23 * 300.0;
    d.perf.input_noise_v2 =
        2.0 * k4kt * (2.0 / 3.0) / m1.gm * (1.0 + m3.gm / m1.gm);
  }
  d.perf.cc = cc;
  d.perf.rz = 1.0 / m6.gm;
  d.perf.input_cm = vtail + m1.vgs;
  if (d.perf.input_cm > vdd - m3.vgs + m1.vth) {
    // Input CM must keep the load diode and the pair saturated; this is
    // informational - the testbench uses input_cm directly.
  }
  return d;
}

}  // namespace ape::est
