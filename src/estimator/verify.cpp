#include "src/estimator/verify.h"

#include <algorithm>
#include <cmath>

#include "src/spice/analysis.h"
#include "src/spice/devices.h"
#include "src/spice/measure.h"
#include "src/spice/parser.h"

namespace ape::est {
namespace {

using spice::AcResult;
using spice::Bode;
using spice::Circuit;
using spice::NodeId;

/// Bode of a (possibly differential) probe pair.
Bode probe_bode(const Circuit& ckt, const AcResult& ac, const Testbench& tb) {
  if (tb.out_node2.empty()) return Bode(ac, ckt.find_node(tb.out_node));
  // Differential: synthesize an AcResult holding v(out) - v(out2).
  AcResult diff;
  diff.freq_hz = ac.freq_hz;
  const NodeId p = ckt.find_node(tb.out_node);
  const NodeId n = ckt.find_node(tb.out_node2);
  for (size_t k = 0; k < ac.freq_hz.size(); ++k) {
    diff.solutions.push_back({ac.voltage(p, k) - ac.voltage(n, k)});
  }
  return Bode(diff, 0);
}

/// Signed low-frequency gain: magnitude with the sign of the real part.
double signed_dc_gain(const Circuit& ckt, const AcResult& ac, const Testbench& tb) {
  std::complex<double> h;
  if (tb.out_node2.empty()) {
    h = ac.voltage(ckt.find_node(tb.out_node), 0);
  } else {
    h = ac.voltage(ckt.find_node(tb.out_node), 0) -
        ac.voltage(ckt.find_node(tb.out_node2), 0);
  }
  const double mag = std::abs(h);
  return h.real() < 0.0 ? -mag : mag;
}

}  // namespace

SimMeasurement simulate(const Testbench& tb, double fstart, double fstop,
                        int points_per_decade) {
  Circuit ckt = spice::parse_netlist(tb.netlist);
  const auto sol = spice::dc_operating_point(ckt);

  SimMeasurement m;
  m.out_dc = spice::node_voltage(ckt, sol, tb.out_node);
  if (!tb.supply_source.empty()) {
    const double i = spice::source_current(ckt, sol, tb.supply_source);
    const double vdd = spice::node_voltage(
        ckt, sol, "vdd");  // supply node is "vdd" in all emitted benches
    m.power = std::fabs(i) * vdd;
  }
  if (!tb.in_source.empty()) {
    // DC current through the probe source (current-source components).
    m.out_current = std::fabs(spice::source_current(ckt, sol, tb.in_source));
  }

  const auto ac = spice::ac_analysis(ckt, fstart, fstop, points_per_decade);
  const Bode bode = probe_bode(ckt, ac, tb);
  m.dc_gain = signed_dc_gain(ckt, ac, tb);
  m.ugf_hz = bode.unity_gain_freq();
  m.f3db_hz = bode.f_3db();
  m.phase_margin = bode.phase_margin_deg();

  // Output impedance: when the probe is a voltage source with AC 1, the
  // AC current through its branch gives |Zout| = 1 / |I|.
  if (!tb.in_source.empty()) {
    auto& vs = ckt.find_as<spice::VSource>(tb.in_source);
    if (vs.wave().ac_mag != 0.0) {
      const auto i_ac = ac.solutions.front()[static_cast<size_t>(vs.branch())];
      const double mag = std::abs(i_ac);
      if (mag > 0.0) m.zout = vs.wave().ac_mag / mag;
    }
  }
  return m;
}

ComponentSimReport simulate_component(const ComponentDesign& design,
                                      const Process& proc) {
  const Testbench tb = design.testbench(proc);
  ComponentSimReport r;

  switch (design.spec.kind) {
    case ComponentKind::DcVolt: {
      const SimMeasurement m = simulate(tb, 1.0, 1e6, 10);
      r.power = m.power;
      r.gain = m.out_dc;  // the produced reference voltage
      r.current = m.power / proc.vdd;
      r.zout = 0.0;
      break;
    }
    case ComponentKind::CurrentMirror:
    case ComponentKind::WilsonSource:
    case ComponentKind::CascodeSource: {
      const SimMeasurement m = simulate(tb, 1.0, 1e6, 10);
      r.power = m.power;
      r.current = m.out_current;
      r.zout = m.zout;
      break;
    }
    default: {
      const SimMeasurement m = simulate(tb, 10.0, 1e10, 20);
      r.power = m.power;
      r.gain = m.dc_gain;
      // Sub-unity-gain stages (followers) report their bandwidth instead.
      r.ugf_hz = m.ugf_hz ? m.ugf_hz : m.f3db_hz;
      r.zout = m.zout;
      if (design.spec.kind == ComponentKind::Follower) {
        r.current = m.power / proc.vdd;  // total branch current drawn
      }
      // CMRR: second run with a common-mode stimulus.
      if (design.spec.kind == ComponentKind::DiffCmos ||
          design.spec.kind == ComponentKind::DiffNmos) {
        const Testbench cm = design.testbench(proc, TbMode::CommonMode);
        const SimMeasurement mc = simulate(cm, 10.0, 1e10, 20);
        if (std::fabs(mc.dc_gain) > 0.0) {
          r.cmrr_db = 20.0 * std::log10(std::fabs(m.dc_gain) /
                                        std::fabs(mc.dc_gain));
        }
        r.current = m.power / proc.vdd / 2.0;  // tail branch current
      }
      break;
    }
  }
  return r;
}

OpAmpSimReport simulate_opamp(const OpAmpDesign& design, const Process& proc,
                              bool with_transient) {
  ErrorContext scope("simulate_opamp");
  OpAmpSimReport r;

  // Open-loop AC: gain, UGF, phase margin, power, tail current.
  {
    const Testbench tb = design.testbench(proc, OpAmpTb::OpenLoop);
    Circuit ckt = spice::parse_netlist(tb.netlist);
    const auto sol = spice::dc_operating_point(ckt);
    r.out_dc = spice::node_voltage(ckt, sol, "out");
    r.power = std::fabs(spice::source_current(ckt, sol, "Vdd")) * proc.vdd;
    r.ibias = std::fabs(spice::source_current(ckt, sol, "Vtailx1"));
    const auto ac = spice::ac_analysis(ckt, 1.0, 1e9, 20);
    const Bode bode(ac, ckt.find_node("out"));
    r.gain = bode.dc_gain();
    r.ugf_hz = bode.unity_gain_freq();
    r.phase_margin = bode.phase_margin_deg();
  }

  // Common-mode AC for CMRR (non-fatal: a failed auxiliary measurement
  // leaves the field empty instead of discarding the open-loop results).
  try {
    const Testbench tb = design.testbench(proc, OpAmpTb::CommonMode);
    Circuit ckt = spice::parse_netlist(tb.netlist);
    (void)spice::dc_operating_point(ckt);
    const auto ac = spice::ac_analysis(ckt, 1.0, 1e3, 5);
    const double acm = std::abs(ac.voltage(ckt.find_node("out"), 0));
    if (acm > 0.0 && r.gain > 0.0) {
      r.cmrr_db = 20.0 * std::log10(r.gain / acm);
    }
  } catch (const Error&) {
  }

  // Output impedance (non-fatal).
  try {
    const Testbench tb = design.testbench(proc, OpAmpTb::ZoutProbe);
    Circuit ckt = spice::parse_netlist(tb.netlist);
    (void)spice::dc_operating_point(ckt);
    const auto ac = spice::ac_analysis(ckt, 1.0, 10.0, 5);
    r.zout = std::abs(ac.voltage(ckt.find_node("out"), 0));
  } catch (const Error&) {
  }

  // Unity-gain pulse for the slew rate: the slower of the two edges is
  // the circuit's slew limit (matches the textbook min() composition).
  // Non-fatal: transient non-convergence reports slew = 0.
  if (with_transient) try {
    const Testbench tb = design.testbench(proc, OpAmpTb::UnityStep);
    Circuit ckt = spice::parse_netlist(tb.netlist);
    const double est_slew = std::max(design.perf.slew, 1e3);
    const double pw = std::clamp(8.0 * 0.8 / est_slew, 2e-6, 5e-3);
    const double t_stop = 1e-6 + 2.0 * pw;
    const auto tr = spice::transient(ckt, pw / 200.0, t_stop);
    const NodeId out = ckt.find_node("out");

    // 20-80% edge slew of the segment [k0, k1).
    auto edge_slew = [&](size_t k0, size_t k1) -> double {
      if (k1 <= k0 + 2) return 0.0;
      const double v0 = tr.voltage(out, k0);
      const double v1 = tr.voltage(out, k1 - 1);
      if (std::fabs(v1 - v0) < 0.1) return 0.0;
      const double lo = v0 + 0.2 * (v1 - v0);
      const double hi = v0 + 0.8 * (v1 - v0);
      double t_lo = -1.0, t_hi = -1.0;
      for (size_t k = k0 + 1; k < k1; ++k) {
        const double va = tr.voltage(out, k - 1), vb = tr.voltage(out, k);
        auto crosses = [&](double level) {
          return (va - level) * (vb - level) <= 0.0 && va != vb;
        };
        if (t_lo < 0.0 && crosses(lo)) {
          t_lo = tr.time_s[k - 1] + (lo - va) / (vb - va) *
                                        (tr.time_s[k] - tr.time_s[k - 1]);
        }
        if (t_lo >= 0.0 && crosses(hi)) {
          t_hi = tr.time_s[k - 1] + (hi - va) / (vb - va) *
                                        (tr.time_s[k] - tr.time_s[k - 1]);
          break;
        }
      }
      if (t_lo < 0.0 || t_hi <= t_lo) return 0.0;
      return 0.6 * std::fabs(v1 - v0) / (t_hi - t_lo);
    };

    // Split at the pulse's falling input edge (t = 1 us + pw).
    size_t split = tr.time_s.size() - 1;
    for (size_t k = 0; k < tr.time_s.size(); ++k) {
      if (tr.time_s[k] >= 1e-6 + pw) {
        split = k;
        break;
      }
    }
    const double rise = edge_slew(0, split);
    const double fall = edge_slew(split, tr.time_s.size());
    if (rise > 0.0 && fall > 0.0) {
      r.slew = std::min(rise, fall);
    } else {
      r.slew = std::max(rise, fall);
    }
    if (r.slew == 0.0) r.slew = spice::slew_rate(tr, out);
  } catch (const Error&) {
    r.slew = 0.0;
  }
  return r;
}

}  // namespace ape::est
