#include "src/estimator/transistor.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"
#include "src/util/units.h"

namespace ape::est {
namespace {

using spice::MosEval;
using spice::MosModelCard;
using spice::MosType;

constexpr double kMinVov = 0.05;  ///< below this the device is subthreshold
constexpr int kRefineIters = 12;

/// Longest drawn length we will trade for width feasibility.
double lmax_for(const Process& p) { return 256.0 * p.lmin; }

}  // namespace

double TransistorEstimator::vgs_for_id(MosType type, double w, double l,
                                       double id, double vds, double vbs) const {
  const MosModelCard& card = proc_.card(type);
  if (id <= 0.0) throw SpecError("vgs_for_id: non-positive current");
  // ids is monotonically increasing in vgs. Safeguarded Newton on
  // f(vgs) = ids(vgs) - id using the model's analytic gm: ~6-10 model
  // evaluations instead of the 80 a full-precision bisection needs (this
  // is the estimator's hottest loop — every sizing refinement lands here).
  // The [lo, hi] bracket guarantees progress where gm vanishes (cutoff).
  double lo = 0.0, hi = 3.0 * proc_.vdd + 5.0;
  const double i_hi = spice::mos_eval(card, hi, vds, vbs, w, l).ids;
  if (i_hi < id) {
    throw SpecError("vgs_for_id: " + units::format_eng(id) +
                    "A unreachable with W=" + units::format_eng(w) +
                    " L=" + units::format_eng(l));
  }
  // Square-law seed: vgs ~ |Vto| + sqrt(2 Id Leff / (KP W)).
  const double kp = card.kp > 0.0 ? card.kp : card.u0 * 1e-4 * card.cox();
  double vgs = std::fabs(card.vto) + std::sqrt(2.0 * id * card.leff(l) / (kp * w));
  if (!std::isfinite(vgs) || vgs <= lo || vgs >= hi) vgs = 0.5 * (lo + hi);
  for (int i = 0; i < 100; ++i) {
    const MosEval e = spice::mos_eval(card, vgs, vds, vbs, w, l);
    const double f = e.ids - id;
    if (std::fabs(f) <= 1e-12 * id) break;
    if (f < 0.0) {
      lo = vgs;
    } else {
      hi = vgs;
    }
    if (hi - lo <= 1e-14 * (1.0 + hi)) break;
    double next = e.gm > 0.0 ? vgs - f / e.gm : 0.5 * (lo + hi);
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);  // Newton left the bracket
    if (std::fabs(next - vgs) <= 1e-15 * (1.0 + std::fabs(vgs))) {
      vgs = next;
      break;
    }
    vgs = next;
  }
  return vgs;
}

TransistorDesign TransistorEstimator::finish(MosType type, double w, double l,
                                             double vgs, double vds,
                                             double vbs) const {
  const MosEval e = spice::mos_eval(proc_.card(type), vgs, vds, vbs, w, l,
                                    3.0 * l * w, 3.0 * l * w,
                                    2.0 * (3.0 * l + w), 2.0 * (3.0 * l + w));
  TransistorDesign d;
  d.type = type;
  d.w = w;
  d.l = l;
  d.id = e.ids;
  d.vgs = vgs;
  d.vds = vds;
  d.vbs = vbs;
  d.vth = e.vth;
  d.vdsat = e.vdsat;
  d.gm = e.gm;
  d.gds = e.gds;
  d.gmb = e.gmb;
  d.cgs = e.cgs;
  d.cgd = e.cgd;
  d.cgb = e.cgb;
  d.cdb = e.cdb;
  d.csb = e.csb;
  return d;
}

TransistorDesign TransistorEstimator::evaluate(MosType type, double w, double l,
                                               double vgs, double vds,
                                               double vbs) const {
  if (w < proc_.wmin || l < proc_.lmin) {
    throw SpecError("evaluate: geometry below process minimum");
  }
  return finish(type, w, l, vgs, vds, vbs);
}

TransistorDesign TransistorEstimator::size_for_gm_id(MosType type, double gm,
                                                     double id, double vds,
                                                     double vbs, double l) const {
  if (gm <= 0.0 || id <= 0.0) {
    throw SpecError("size_for_gm_id: gm and Id must be positive");
  }
  const MosModelCard& card = proc_.card(type);
  if (vds < 0.0) vds = 0.5 * (proc_.vdd - proc_.vss);
  if (l < 0.0) l = 2.0 * proc_.lmin;

  // Feasibility: Vov = 2 Id / gm must keep the device in strong inversion
  // and within the supply.
  const double vov = 2.0 * id / gm;
  if (vov < kMinVov) {
    throw SpecError("size_for_gm_id: implied Vov=" + units::format_eng(vov) +
                    "V is subthreshold (gm too large for Id)");
  }
  if (std::fabs(card.vto) + vov > proc_.vdd - proc_.vss) {
    throw SpecError("size_for_gm_id: implied Vgs exceeds the supply");
  }

  // Closed-form level-1 seed (paper eq. 2): W/L = gm^2 / (2 KP Id).
  const double kp = card.kp > 0.0 ? card.kp : card.u0 * 1e-4 * card.cox();
  double w = (gm * gm / (2.0 * kp * id)) * card.leff(l);

  // Width feasibility: trade length for width if the seed is too narrow.
  if (w < proc_.wmin) {
    const double scale = proc_.wmin / w;
    l = std::min(l * scale, lmax_for(proc_));
    w = proc_.wmin;
  }
  if (w > proc_.wmax) {
    throw SpecError("size_for_gm_id: required W=" + units::format_eng(w) +
                    " exceeds process maximum");
  }

  // Numeric refinement against the actual model card (handles LEVEL 2/3
  // mobility degradation and body effect): at fixed Id, gm ~ sqrt(W).
  double vgs = 0.0;
  for (int it = 0; it < kRefineIters; ++it) {
    vgs = vgs_for_id(type, w, l, id, vds, vbs);
    const double gm_meas = spice::mos_eval(card, vgs, vds, vbs, w, l).gm;
    if (std::fabs(gm_meas - gm) <= 1e-3 * gm) break;
    double w_next = w * (gm / gm_meas) * (gm / gm_meas);
    w_next = std::clamp(w_next, proc_.wmin, proc_.wmax);
    if (w_next == w) {
      // Pinned at the width floor with gm overshooting: stretch L instead
      // (gm ~ sqrt(W/L) at fixed Id).
      if (w == proc_.wmin && gm_meas > gm) {
        const double l_next =
            std::min(l * (gm_meas / gm) * (gm_meas / gm), lmax_for(proc_));
        if (l_next == l) break;
        l = l_next;
        continue;
      }
      break;
    }
    w = w_next;
  }
  return finish(type, w, l, vgs, vds, vbs);
}

TransistorDesign TransistorEstimator::size_for_id_vov(MosType type, double id,
                                                      double vov, double vds,
                                                      double vbs, double l) const {
  if (id <= 0.0 || vov < kMinVov) {
    throw SpecError("size_for_id_vov: need Id > 0 and Vov >= " +
                    units::format_eng(kMinVov) + "V");
  }
  const MosModelCard& card = proc_.card(type);
  if (vds < 0.0) vds = 0.5 * (proc_.vdd - proc_.vss);
  if (l < 0.0) l = 2.0 * proc_.lmin;

  const double kp = card.kp > 0.0 ? card.kp : card.u0 * 1e-4 * card.cox();
  double w = (2.0 * id / (kp * vov * vov)) * card.leff(l);
  if (w < proc_.wmin) {
    const double scale = proc_.wmin / w;
    l = std::min(l * scale, lmax_for(proc_));
    w = proc_.wmin;
  }
  if (w > proc_.wmax) {
    throw SpecError("size_for_id_vov: required W exceeds process maximum");
  }

  double vgs = 0.0;
  for (int it = 0; it < kRefineIters; ++it) {
    vgs = vgs_for_id(type, w, l, id, vds, vbs);
    const auto e = spice::mos_eval(card, vgs, vds, vbs, w, l);
    const double vov_meas = vgs - e.vth;
    if (vov_meas <= 0.0) break;
    if (std::fabs(vov_meas - vov) <= 1e-3 * vov) break;
    double w_next = w * (vov_meas / vov) * (vov_meas / vov);
    w_next = std::clamp(w_next, proc_.wmin, proc_.wmax);
    if (w_next == w) break;
    w = w_next;
  }
  return finish(type, w, l, vgs, vds, vbs);
}

}  // namespace ape::est
