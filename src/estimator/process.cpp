#include "src/estimator/process.h"

#include <cmath>

#include "src/util/error.h"

namespace ape::est {

Process Process::default_1u2() {
  Process p;
  p.name = "generic-1.2u";

  spice::MosModelCard n;
  n.name = "modn";
  n.type = spice::MosType::Nmos;
  n.level = 1;
  n.vto = 0.8;
  n.kp = 8.0e-5;
  n.gamma = 0.4;
  n.phi = 0.6;
  n.lambda = 0.02;
  n.tox = 2.0e-8;
  n.ld = 0.1e-6;
  n.cgso = 3.0e-10;
  n.cgdo = 3.0e-10;
  n.cj = 3.0e-4;
  n.mj = 0.5;
  n.cjsw = 3.0e-10;
  n.mjsw = 0.33;
  n.pb = 0.8;
  n.lref = 2.4e-6;
  p.nmos = n;

  spice::MosModelCard q = n;
  q.name = "modp";
  q.type = spice::MosType::Pmos;
  q.vto = -0.8;
  q.kp = 2.8e-5;
  q.gamma = 0.5;
  q.lambda = 0.03;
  p.pmos = q;

  p.vdd = 5.0;
  p.vss = 0.0;
  p.lmin = 1.2e-6;
  p.wmin = 2.0e-6;
  return p;
}

Process Process::default_1u2_level3() {
  Process p = default_1u2();
  p.name = "generic-1.2u-l3";
  p.nmos.level = 3;
  p.nmos.theta = 0.08;
  p.nmos.vmax = 1.5e5;
  p.nmos.eta = 0.02;
  p.pmos.level = 3;
  p.pmos.theta = 0.1;
  p.pmos.vmax = 8.0e4;
  p.pmos.eta = 0.02;
  return p;
}

Process Process::default_1u2_bsim() {
  Process p = default_1u2();
  p.name = "generic-1.2u-bsim";
  auto to_bsim = [](spice::MosModelCard& c) {
    c.level = 4;
    // Match the LEVEL 1 threshold at Vsb = 0:
    // VTO = VFB + PHI + K1 sqrt(PHI)  with K1 = GAMMA, K2 = 0.
    c.k1 = c.gamma;
    c.k2 = 0.0;
    const double vto = c.type == spice::MosType::Pmos ? -c.vto : c.vto;
    c.vfb = vto - c.phi - c.k1 * std::sqrt(c.phi);
    if (c.type == spice::MosType::Pmos) c.vfb = -c.vfb;
    // Match the LEVEL 1 transconductance parameter at low fields.
    c.muz = c.kp / c.cox() * 1e4;
    c.kp = 0.0;  // level 4 derives beta from MUZ
    c.u0v = 0.05;
    c.u1 = 2.0e-8;
  };
  to_bsim(p.nmos);
  to_bsim(p.pmos);
  return p;
}

void perturb_card(spice::MosModelCard& card, double dvth, double kp_scale) {
  const bool pmos = card.type == spice::MosType::Pmos;
  if (card.level == 4) {
    // LEVEL 4 derives beta from MUZ and the threshold from
    // VFB + PHI + K1 sqrt(PHI); the PMOS card stores VFB negated (see
    // default_1u2_bsim), so a magnitude-frame |Vth| shift is a negative
    // VFB shift there.
    card.vfb += pmos ? -dvth : dvth;
    card.muz *= kp_scale;
  } else {
    card.vto += pmos ? -dvth : dvth;
    card.kp *= kp_scale;
  }
}

Process Process::corner(const CornerDelta& d) const {
  // Temperature scaling is always relative to the nominal 27 C the card
  // values describe, not to the base process's temp_c — corners derive
  // from nominal cards, they do not compose.
  constexpr double kTnomC = 27.0;
  constexpr double kVthTempCoeff = 2.0e-3;  // d|Vth|/dT [V/K], sign: drops hot
  const double t_k = d.temp_c + 273.15;
  const double tnom_k = kTnomC + 273.15;
  if (t_k <= 0.0) {
    throw SpecError("Process::corner: temperature below absolute zero");
  }
  const double mobility = std::pow(t_k / tnom_k, -1.5);
  const double dvth_temp = -kVthTempCoeff * (d.temp_c - kTnomC);
  Process out = *this;
  perturb_card(out.nmos, d.nmos_dvth + dvth_temp, d.nmos_kp_scale * mobility);
  perturb_card(out.pmos, d.pmos_dvth + dvth_temp, d.pmos_kp_scale * mobility);
  out.vdd = vdd * d.vdd_scale;
  out.temp_c = d.temp_c;
  out.variant = variant.empty() ? d.name : variant + "/" + d.name;
  return out;
}

Process Process::from_cards(spice::MosModelCard n, spice::MosModelCard p,
                            double vdd) {
  if (n.type != spice::MosType::Nmos || p.type != spice::MosType::Pmos) {
    throw SpecError("Process::from_cards: cards must be (nmos, pmos)");
  }
  Process out;
  out.name = n.name + "/" + p.name;
  out.nmos = std::move(n);
  out.pmos = std::move(p);
  out.vdd = vdd;
  return out;
}

}  // namespace ape::est
