#pragma once
/// \file netlist.h
/// Netlist emission for sized designs. Every APE design object can render
/// itself as a SPICE testbench so the simulator substrate can verify the
/// estimates - this is what produces the "sim" columns of Tables 2/3/5.

#include <string>
#include <vector>

#include "src/estimator/process.h"
#include "src/estimator/transistor.h"

namespace ape::est {

/// Incremental SPICE-text builder with automatic element numbering.
class NetlistBuilder {
public:
  explicit NetlistBuilder(std::string title) : title_(std::move(title)) {}

  /// Emit both process model cards.
  void models(const Process& proc);

  void comment(const std::string& text);
  void resistor(const std::string& a, const std::string& b, double ohms);
  void capacitor(const std::string& a, const std::string& b, double farads);
  void vsource(const std::string& name, const std::string& p,
               const std::string& n, const std::string& spec);
  void isource(const std::string& name, const std::string& p,
               const std::string& n, const std::string& spec);
  void inductor(const std::string& a, const std::string& b, double henries);

  /// VCVS (SPICE 'E' element) - used by opamp macromodels.
  void vcvs(const std::string& name, const std::string& p, const std::string& n,
            const std::string& cp, const std::string& cn, double gain);

  /// MOSFET bound to the process card matching \p t's type. Model names
  /// follow the Process ("modn"/"modp" in the default process).
  void mosfet(const Process& proc, const TransistorDesign& t,
              const std::string& d, const std::string& g, const std::string& s,
              const std::string& b);

  /// Raw line escape hatch.
  void line(const std::string& text);

  /// A fresh unique node name with the given prefix.
  std::string fresh(const std::string& prefix);

  std::string str() const;

private:
  std::string title_;
  std::vector<std::string> lines_;
  int counter_ = 0;
};

/// A self-contained simulation setup produced by a design object:
/// the netlist text plus the probe points the measurement code needs.
struct Testbench {
  std::string netlist;
  std::string out_node;      ///< primary output to probe
  std::string out_node2;     ///< inverting half for differential probing ("" = single-ended)
  std::string in_source;     ///< stimulus source name (carries AC 1)
  std::string supply_source; ///< VDD source (power = vdd * |I(supply)|)
  double cload = 0.0;        ///< attached load capacitance [F]
};

}  // namespace ape::est
